// Core correctness tests for mpx::partition: structural invariants,
// equivalence between the BFS implementation (Algorithm 1) and the exact
// Algorithm 2 references, determinism, and the shift-based diameter bound.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/random.hpp"
#include "graph/builder.hpp"
#include "core/exact_partition.hpp"
#include "core/metrics.hpp"
#include "core/partition.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "parallel/thread_env.hpp"
#include "tests/support/fixtures.hpp"
#include "tests/support/invariants.hpp"

namespace mpx {
namespace {

using namespace mpx::generators;
using mpx::testing::check_decomposition_invariants;
using mpx::testing::NamedGraph;

PartitionOptions opts(double beta, std::uint64_t seed,
                      TieBreak tb = TieBreak::kFractionalShift) {
  PartitionOptions o;
  o.beta = beta;
  o.seed = seed;
  o.tie_break = tb;
  return o;
}

TEST(Partition, CoversEveryVertex) {
  const CsrGraph g = grid2d(20, 20);
  const Decomposition dec = partition(g, opts(0.2, 1));
  EXPECT_EQ(dec.num_vertices(), g.num_vertices());
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LT(dec.cluster_of(v), dec.num_clusters());
  }
}

TEST(Partition, CentersAnchorTheirOwnClusters) {
  const CsrGraph g = erdos_renyi(500, 1500, 3);
  const Decomposition dec = partition(g, opts(0.1, 5));
  for (cluster_t c = 0; c < dec.num_clusters(); ++c) {
    EXPECT_EQ(dec.cluster_of(dec.center(c)), c);
    EXPECT_EQ(dec.dist_to_center(dec.center(c)), 0u);
  }
}

TEST(Partition, VerifierAcceptsPartitions) {
  const CsrGraph g = grid2d(15, 15);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const Decomposition dec = partition(g, opts(0.15, seed));
    EXPECT_TRUE(check_decomposition_invariants(dec, g, {.beta = 0.15}));
  }
}

TEST(Partition, VerifierWithShiftBound) {
  const CsrGraph g = erdos_renyi(300, 900, 11);
  const Shifts shifts = generate_shifts(g.num_vertices(), opts(0.1, 2));
  const Decomposition dec = partition_with_shifts(g, shifts);
  EXPECT_TRUE(check_decomposition_invariants(dec, g,
                                             {.beta = 0.1, .shifts = &shifts}));
}

TEST(Partition, InvariantsHoldAcrossCanonicalCorpus) {
  // Every canonical shape — degenerate, disconnected, dense, mesh,
  // power-law — must produce a decomposition satisfying the full
  // invariant battery, for coarse and fine beta.
  for (const NamedGraph& ng : mpx::testing::canonical_graphs()) {
    for (const double beta : {0.1, 0.5}) {
      SCOPED_TRACE(ng.name + " beta=" + std::to_string(beta));
      const Decomposition dec = partition(ng.graph, opts(beta, 42));
      EXPECT_TRUE(check_decomposition_invariants(dec, ng.graph, {.beta = beta}));
    }
  }
}

TEST(Partition, MatchesExactDiscreteReference) {
  // The delayed BFS and the brute-force (start + dist, rank) argmin must
  // agree exactly — this is the executable form of the Section 5
  // equivalence argument.
  const CsrGraph graphs[] = {path(40),           cycle(31),
                             grid2d(8, 9),       complete(25),
                             star(50),           complete_binary_tree(63),
                             erdos_renyi(80, 200, 1), barbell(10)};
  for (const CsrGraph& g : graphs) {
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      const Shifts shifts =
          generate_shifts(g.num_vertices(), opts(0.2, seed));
      const Decomposition bfs = partition_with_shifts(g, shifts);
      const Decomposition exact = exact_partition_discrete(g, shifts);
      ASSERT_EQ(bfs.num_clusters(), exact.num_clusters());
      for (vertex_t v = 0; v < g.num_vertices(); ++v) {
        ASSERT_EQ(bfs.center(bfs.cluster_of(v)),
                  exact.center(exact.cluster_of(v)))
            << "vertex " << v << " seed " << seed;
        ASSERT_EQ(bfs.dist_to_center(v), exact.dist_to_center(v));
      }
    }
  }
}

TEST(Partition, MatchesExactRealReferenceUnderFractionalTies) {
  // With fractional tie-breaking, the discrete schedule reproduces the
  // real-valued shifted-distance ordering of Algorithm 2 exactly.
  const CsrGraph graphs[] = {path(30), grid2d(7, 7),
                             erdos_renyi(60, 150, 2), cycle(25)};
  for (const CsrGraph& g : graphs) {
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      const Shifts shifts =
          generate_shifts(g.num_vertices(),
                          opts(0.3, seed, TieBreak::kFractionalShift));
      const Decomposition bfs = partition_with_shifts(g, shifts);
      const Decomposition real = exact_partition_real(g, shifts);
      for (vertex_t v = 0; v < g.num_vertices(); ++v) {
        ASSERT_EQ(bfs.center(bfs.cluster_of(v)),
                  real.center(real.cluster_of(v)))
            << "vertex " << v << " seed " << seed;
      }
    }
  }
}

TEST(Partition, DeterministicAcrossThreadCounts) {
  const CsrGraph g = rmat(10, 5.0, 9);
  std::vector<cluster_t> a;
  std::vector<cluster_t> b;
  {
    ScopedNumThreads guard(1);
    const Decomposition dec = partition(g, opts(0.05, 77));
    a.assign(dec.assignment().begin(), dec.assignment().end());
  }
  {
    ScopedNumThreads guard(max_threads());
    const Decomposition dec = partition(g, opts(0.05, 77));
    b.assign(dec.assignment().begin(), dec.assignment().end());
  }
  EXPECT_EQ(a, b);
}

TEST(Partition, SeedChangesTheResult) {
  const CsrGraph g = grid2d(30, 30);
  const Decomposition a = partition(g, opts(0.1, 1));
  const Decomposition b = partition(g, opts(0.1, 2));
  // Different shifts virtually always give different clusterings.
  bool any_different = a.num_clusters() != b.num_clusters();
  for (vertex_t v = 0; !any_different && v < g.num_vertices(); ++v) {
    any_different = a.center(a.cluster_of(v)) != b.center(b.cluster_of(v));
  }
  EXPECT_TRUE(any_different);
}

TEST(Partition, RadiusRespectsShiftBound) {
  // dist(v, center) <= delta_center + 1 for every vertex (Lemma 4.2 route
  // to the diameter bound).
  const CsrGraph g = erdos_renyi(400, 1000, 4);
  const Shifts shifts = generate_shifts(g.num_vertices(), opts(0.05, 3));
  const Decomposition dec = partition_with_shifts(g, shifts);
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    const vertex_t center = dec.center(dec.cluster_of(v));
    EXPECT_LE(static_cast<double>(dec.dist_to_center(v)),
              shifts.delta[center] + 1.0);
  }
}

TEST(Partition, SingletonAndEmptyGraphs) {
  const std::vector<Edge> none;
  const CsrGraph empty = build_undirected(0, std::span<const Edge>(none));
  const Decomposition dec_empty = partition(empty, opts(0.5, 1));
  EXPECT_EQ(dec_empty.num_clusters(), 0u);

  const CsrGraph one = build_undirected(1, std::span<const Edge>(none));
  const Decomposition dec_one = partition(one, opts(0.5, 1));
  EXPECT_EQ(dec_one.num_clusters(), 1u);
  EXPECT_EQ(dec_one.center(0), 0u);
}

TEST(Partition, EdgelessGraphMakesSingletons) {
  const std::vector<Edge> none;
  const CsrGraph g = build_undirected(10, std::span<const Edge>(none));
  const Decomposition dec = partition(g, opts(0.3, 6));
  EXPECT_EQ(dec.num_clusters(), 10u);
  for (vertex_t v = 0; v < 10; ++v) {
    EXPECT_EQ(dec.center(dec.cluster_of(v)), v);
  }
}

TEST(Partition, DisconnectedGraphPartitionsEachComponent) {
  const CsrGraph g = disjoint_copies(grid2d(6, 6), 3);
  const Decomposition dec = partition(g, opts(0.2, 8));
  EXPECT_TRUE(check_decomposition_invariants(dec, g, {.beta = 0.2}));
  // A cluster never spans two copies.
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(dec.center(dec.cluster_of(v)) / 36, v / 36);
  }
}

TEST(Partition, CompleteGraphBecomesOneClusterForSmallBeta) {
  // On K_n the first center to wake claims everything one round later
  // unless another center wakes within that round; with tiny beta the
  // start times are far apart, so a single cluster is typical.
  const CsrGraph g = complete(60);
  int single = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Decomposition dec = partition(g, opts(0.01, seed));
    if (dec.num_clusters() <= 2) ++single;
  }
  EXPECT_GE(single, 8);
}

TEST(Partition, PathGraphClusterCountScalesWithBeta) {
  // On a path, cut probability per edge ~ beta: expect ~ beta*n pieces.
  const CsrGraph g = path(4000);
  const Decomposition coarse = partition(g, opts(0.02, 3));
  const Decomposition fine = partition(g, opts(0.2, 3));
  EXPECT_LT(coarse.num_clusters(), fine.num_clusters());
  EXPECT_GT(coarse.num_clusters(), 10u);     // ~80 expected
  EXPECT_LT(coarse.num_clusters(), 400u);
  EXPECT_GT(fine.num_clusters(), 300u);      // ~800 expected
}

TEST(Partition, AllTieBreakModesYieldValidDecompositions) {
  const CsrGraph g = grid2d(12, 12);
  for (const TieBreak tb :
       {TieBreak::kFractionalShift, TieBreak::kRandomPermutation,
        TieBreak::kLexicographic}) {
    SCOPED_TRACE("mode=" + std::to_string(static_cast<int>(tb)));
    const Decomposition dec = partition(g, opts(0.15, 4, tb));
    EXPECT_TRUE(check_decomposition_invariants(dec, g, {.beta = 0.15}));
  }
}

TEST(Partition, TieBreakModeMatchesItsOwnExactReference) {
  // The discrete reference uses the same (start, rank) order, so it must
  // agree for permutation and lexicographic modes too.
  const CsrGraph g = erdos_renyi(70, 180, 6);
  for (const TieBreak tb :
       {TieBreak::kRandomPermutation, TieBreak::kLexicographic}) {
    const Shifts shifts = generate_shifts(g.num_vertices(), opts(0.2, 5, tb));
    const Decomposition bfs = partition_with_shifts(g, shifts);
    const Decomposition exact = exact_partition_discrete(g, shifts);
    for (vertex_t v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(bfs.center(bfs.cluster_of(v)),
                exact.center(exact.cluster_of(v)))
          << "mode " << static_cast<int>(tb);
    }
  }
}

TEST(Partition, ProvenanceFieldsPopulated) {
  const CsrGraph g = grid2d(25, 25);
  const Decomposition dec = partition(g, opts(0.1, 12));
  EXPECT_GT(dec.bfs_rounds, 0u);
  EXPECT_GT(dec.arcs_scanned, 0u);
  EXPECT_LE(dec.arcs_scanned, g.num_arcs());
}

TEST(Metrics, AnalyzeReportsConsistentNumbers) {
  const CsrGraph g = grid2d(20, 20);
  const Decomposition dec = partition(g, opts(0.2, 9));
  const DecompositionStats s = analyze(dec, g);
  EXPECT_EQ(s.num_clusters, dec.num_clusters());
  EXPECT_LE(s.cut_edges, g.num_edges());
  EXPECT_GE(s.cut_fraction, 0.0);
  EXPECT_LE(s.cut_fraction, 1.0);
  EXPECT_GE(s.max_radius, s.mean_radius);
  EXPECT_EQ(s.diameter_upper_bound(), 2 * s.max_radius);

  const std::vector<vertex_t> sizes = cluster_sizes(dec);
  vertex_t total = 0;
  for (const vertex_t size : sizes) {
    EXPECT_GE(size, 1u);
    total += size;
  }
  EXPECT_EQ(total, g.num_vertices());
  EXPECT_EQ(s.max_cluster_size,
            *std::max_element(sizes.begin(), sizes.end()));
}

TEST(Metrics, ExactStrongDiametersBoundedByTwiceRadius) {
  const CsrGraph g = grid2d(14, 14);
  const Decomposition dec = partition(g, opts(0.25, 2));
  const DecompositionStats s = analyze(dec, g);
  const std::vector<std::uint32_t> diams = strong_diameters_exact(dec, g);
  ASSERT_EQ(diams.size(), dec.num_clusters());
  const std::uint32_t max_diam = max_strong_diameter_exact(dec, g);
  EXPECT_LE(max_diam, 2 * s.max_radius);
  EXPECT_GE(max_diam, s.max_radius);
  // Two-sweep estimates never exceed the exact values.
  const std::vector<std::uint32_t> sweeps = strong_diameters_two_sweep(dec, g);
  for (cluster_t c = 0; c < dec.num_clusters(); ++c) {
    EXPECT_LE(sweeps[c], diams[c]);
  }
}

TEST(Verify, RejectsCorruptedAssignment) {
  const CsrGraph g = grid2d(10, 10);
  const Decomposition dec = partition(g, opts(0.2, 1));
  // Corrupt: move one vertex into a (likely) non-adjacent cluster by
  // rebuilding a Decomposition with a tampered owner vector.
  std::vector<vertex_t> owner(g.num_vertices());
  std::vector<std::uint32_t> dist(g.num_vertices());
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    owner[v] = dec.center(dec.cluster_of(v));
    dist[v] = dec.dist_to_center(v);
  }
  // Pick a non-center victim (distance >= 1) and hand it to a different
  // cluster with an impossible recorded distance.
  ASSERT_GE(dec.num_clusters(), 2u);
  vertex_t victim = kInvalidVertex;
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    if (dec.dist_to_center(v) >= 1) {
      victim = v;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidVertex);
  owner[victim] = dec.center(dec.cluster_of(victim) == 0 ? 1 : 0);
  dist[victim] = 0;  // definitely wrong: only centers are at distance 0
  const Decomposition tampered(owner, dist);
  const VerifyResult vr = verify_decomposition(tampered, g);
  EXPECT_FALSE(vr.ok);
  EXPECT_FALSE(vr.message.empty());
}

}  // namespace
}  // namespace mpx
