// Tests for version 2 of the .mpxs snapshot format (src/graph/snapshot.*,
// src/graph/snapshot_codec.*, specified in docs/FORMATS.md "Version 2"):
// the 192-byte checksummed header layout, the format-conformance matrix
// the spec's versioning rules demand (cross-version rejection naming both
// versions, unknown flags, nonzero reserved bytes, header-only info),
// tier round trips (hot save -> cold convert -> load must reproduce the
// sections byte-identically), golden files pinning both tiers' on-disk
// bytes, decomposition identity on cold-loaded graphs across thread
// counts, and the corruption batteries: a per-byte truncation sweep over
// whole fixtures, a seeded bit-flip property, block-index attacks behind
// re-sealed checksums, and direct codec-level malformed input.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/partition.hpp"
#include "graph/generators.hpp"
#include "graph/snapshot.hpp"
#include "graph/snapshot_blocks.hpp"
#include "parallel/thread_env.hpp"
#include "tests/support/fixtures.hpp"
#include "tests/support/golden.hpp"
#include "tests/support/property.hpp"
#include "tests/support/temp_dir.hpp"

namespace mpx {
namespace {

using mpx::testing::golden_path;
using mpx::testing::NamedGraph;
using mpx::testing::read_file_or_fail;
using mpx::testing::TempDir;

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void expect_same_graph(const CsrGraph& a, const CsrGraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_arcs(), b.num_arcs());
  EXPECT_TRUE(std::equal(a.offsets().begin(), a.offsets().end(),
                         b.offsets().begin()));
  EXPECT_TRUE(std::equal(a.targets().begin(), a.targets().end(),
                         b.targets().begin()));
}

/// Calls `fn` and asserts it throws std::runtime_error whose message
/// contains every string in `needles` — the conformance matrix checks the
/// *wording* the spec mandates, not just that something threw.
template <typename Fn>
void expect_throws_with(Fn&& fn, std::vector<std::string> needles) {
  try {
    fn();
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    for (const std::string& needle : needles) {
      EXPECT_NE(what.find(needle), std::string::npos)
          << "message \"" << what << "\" lacks \"" << needle << "\"";
    }
  }
}

/// Re-seals a mutated v2 file's header checksum so tampering with header
/// fields reaches the validators *behind* the checksum gate.
void reseal_header_v2(std::string& file) {
  ASSERT_GE(file.size(), io::kSnapshotHeaderBytesV2);
  const std::uint64_t checksum = io::codec::fnv1a_64(
      io::codec::kFnvOffsetBasis,
      reinterpret_cast<const unsigned char*>(file.data()),
      io::kSnapshotHeaderV2ChecksumBytes);
  std::memcpy(file.data() + offsetof(io::SnapshotHeaderV2, header_checksum),
              &checksum, sizeof(checksum));
}

/// Re-seals the block-index section checksum (after index tampering) and
/// then the header checksum that covers it.
void reseal_block_index_v2(std::string& file) {
  io::SnapshotHeaderV2 h{};
  std::memcpy(&h, file.data(), sizeof(h));
  const std::uint64_t checksum = io::codec::fnv1a_64(
      io::codec::kFnvOffsetBasis,
      reinterpret_cast<const unsigned char*>(file.data()) +
          h.block_index_offset,
      h.block_index_bytes);
  std::memcpy(
      file.data() + offsetof(io::SnapshotHeaderV2, block_index_checksum),
      &checksum, sizeof(checksum));
  reseal_header_v2(file);
}

/// The v2 fixture corpus checked into tests/golden/.
std::vector<std::string> v2_golden_names() {
  return {"grid_3x3_v2.mpxs", "grid_3x3_v2_cold.mpxs",
          "grid_3x3_weighted_v2_cold.mpxs", "grid_16x16_v2_cold.mpxs"};
}

// ---------------------------------------------------------------------------
// Header layout + golden bytes
// ---------------------------------------------------------------------------

TEST(SnapshotV2, HeaderLayoutMatchesSpec) {
  // docs/FORMATS.md "Version 2 header layout" states these byte offsets;
  // the static_asserts in graph/snapshot.hpp pin the struct, this test
  // pins the actual file bytes of both tiers.
  TempDir tmp("snapv2");
  const CsrGraph g = generators::path(4);  // the spec's worked example
  for (const io::SnapshotTier tier :
       {io::SnapshotTier::kHot, io::SnapshotTier::kCold}) {
    SCOPED_TRACE(tier == io::SnapshotTier::kHot ? "hot" : "cold");
    const std::string path = tmp.file("p4.mpxs");
    io::SnapshotWriteOptions options;
    options.tier = tier;
    options.block_size = 4;
    io::save_snapshot(path, g, options);
    const std::string file = read_file_or_fail(path);
    ASSERT_GE(file.size(), io::kSnapshotHeaderBytesV2);

    EXPECT_EQ(std::memcmp(file.data(), "MPXSNAP\0", 8), 0);
    std::uint32_t version = 0;
    std::memcpy(&version, file.data() + 8, 4);
    EXPECT_EQ(version, io::kSnapshotVersion2);
    std::uint32_t flags = 0;
    std::memcpy(&flags, file.data() + 12, 4);
    const bool cold = tier == io::SnapshotTier::kCold;
    EXPECT_EQ(flags, io::kSnapshotFlagUndirected |
                         (cold ? io::kSnapshotFlagColdTargets : 0u));
    std::uint64_t n = 0;
    std::memcpy(&n, file.data() + 16, 8);
    EXPECT_EQ(n, 4u);
    std::uint64_t arcs = 0;
    std::memcpy(&arcs, file.data() + 24, 8);
    EXPECT_EQ(arcs, 6u);
    std::uint64_t offsets_offset = 0;
    std::memcpy(&offsets_offset, file.data() + 32, 8);
    EXPECT_EQ(offsets_offset, 192u);
    std::uint32_t block_size = 0;
    std::memcpy(&block_size, file.data() + 96, 4);
    EXPECT_EQ(block_size, cold ? 4u : 0u);
    std::uint32_t reserved0 = ~0u;
    std::memcpy(&reserved0, file.data() + 100, 4);
    EXPECT_EQ(reserved0, 0u);
    // The header carries its own checksum over bytes [0, 136).
    std::uint64_t header_checksum = 0;
    std::memcpy(&header_checksum, file.data() + 136, 8);
    EXPECT_EQ(header_checksum,
              io::codec::fnv1a_64(
                  io::codec::kFnvOffsetBasis,
                  reinterpret_cast<const unsigned char*>(file.data()),
                  io::kSnapshotHeaderV2ChecksumBytes));
    // Sections are 64-byte aligned and the file ends on a boundary.
    EXPECT_EQ(file.size() % io::kSnapshotSectionAlign, 0u);
    // Trailing reserved bytes [144, 192) are zero.
    for (std::size_t i = 144; i < 192; ++i) {
      ASSERT_EQ(file[i], 0) << "reserved byte " << i;
    }
  }
}

TEST(SnapshotV2, GoldenFilesMatchWriter) {
  // Pins the v2 on-disk bytes of both tiers. Regenerate deliberately with
  // build/regen_golden after a spec + version bump.
  TempDir tmp("snapv2");
  const CsrGraph g3 = generators::grid2d(3, 3);

  io::SnapshotWriteOptions hot;
  hot.tier = io::SnapshotTier::kHot;
  const std::string hot_path = tmp.file("hot.mpxs");
  io::save_snapshot(hot_path, g3, hot);
  EXPECT_EQ(read_file_or_fail(hot_path),
            read_file_or_fail(golden_path("grid_3x3_v2.mpxs")));

  io::SnapshotWriteOptions cold;
  cold.tier = io::SnapshotTier::kCold;
  cold.block_size = 8;
  const std::string cold_path = tmp.file("cold.mpxs");
  io::save_snapshot(cold_path, g3, cold);
  EXPECT_EQ(read_file_or_fail(cold_path),
            read_file_or_fail(golden_path("grid_3x3_v2_cold.mpxs")));

  const std::string wcold_path = tmp.file("wcold.mpxs");
  io::save_snapshot(wcold_path, mpx::testing::grid3x3_weighted_reference(),
                    cold);
  EXPECT_EQ(read_file_or_fail(wcold_path),
            read_file_or_fail(golden_path("grid_3x3_weighted_v2_cold.mpxs")));

  io::SnapshotWriteOptions cold64;
  cold64.tier = io::SnapshotTier::kCold;
  cold64.block_size = 64;
  const std::string g16_path = tmp.file("g16.mpxs");
  io::save_snapshot(g16_path, generators::grid2d(16, 16), cold64);
  EXPECT_EQ(read_file_or_fail(g16_path),
            read_file_or_fail(golden_path("grid_16x16_v2_cold.mpxs")));
}

TEST(SnapshotV2, GoldenFilesParseBackToSameGraph) {
  const CsrGraph g3 = generators::grid2d(3, 3);
  expect_same_graph(io::load_snapshot(golden_path("grid_3x3_v2.mpxs")), g3);
  expect_same_graph(io::load_snapshot(golden_path("grid_3x3_v2_cold.mpxs")),
                    g3);
  expect_same_graph(io::map_snapshot(golden_path("grid_3x3_v2_cold.mpxs")),
                    g3);
  expect_same_graph(
      io::load_snapshot(golden_path("grid_16x16_v2_cold.mpxs")),
      generators::grid2d(16, 16));

  const WeightedCsrGraph wg = mpx::testing::grid3x3_weighted_reference();
  const WeightedCsrGraph back = io::load_weighted_snapshot(
      golden_path("grid_3x3_weighted_v2_cold.mpxs"));
  expect_same_graph(back.topology(), wg.topology());
  EXPECT_TRUE(std::equal(back.weights().begin(), back.weights().end(),
                         wg.weights().begin()));
}

// ---------------------------------------------------------------------------
// Format-conformance matrix (docs/FORMATS.md versioning rules)
// ---------------------------------------------------------------------------

TEST(SnapshotV2Conformance, UnknownVersionsRejectedNamingBothVersions) {
  // Rule: a reader encountering a version it does not implement must
  // reject, and the diagnostic must name both the file's version and the
  // supported set. Exercised across the whole golden corpus.
  TempDir tmp("snapv2");
  std::vector<std::string> corpus = v2_golden_names();
  corpus.emplace_back("grid_3x3.mpxs");           // v1
  corpus.emplace_back("grid_3x3_weighted.mpxs");  // v1 weighted
  for (const std::string& name : corpus) {
    for (const std::uint32_t fake_version : {0u, 3u, 7u, 255u}) {
      SCOPED_TRACE(name + " as version " + std::to_string(fake_version));
      std::string bytes = read_file_or_fail(golden_path(name));
      std::memcpy(bytes.data() + 8, &fake_version, 4);
      const std::string path = tmp.file("ver.mpxs");
      write_file(path, bytes);
      const std::vector<std::string> needles = {
          "unsupported format version " + std::to_string(fake_version),
          "versions 1 and 2"};
      expect_throws_with([&] { (void)io::load_snapshot(path); }, needles);
      expect_throws_with([&] { (void)io::read_snapshot_info(path); },
                         needles);
      expect_throws_with([&] { (void)io::verify_snapshot(path); }, needles);
    }
  }
}

TEST(SnapshotV2Conformance, UnknownFlagBitsRejected) {
  // Rule: flag bits a reader does not understand are a hard error even
  // behind a valid header checksum (they may change the payload meaning).
  TempDir tmp("snapv2");
  for (const std::string& name : v2_golden_names()) {
    for (const std::uint32_t bad_bit : {1u << 3, 1u << 15, 1u << 31}) {
      SCOPED_TRACE(name + " flag bit " + std::to_string(bad_bit));
      std::string bytes = read_file_or_fail(golden_path(name));
      std::uint32_t flags = 0;
      std::memcpy(&flags, bytes.data() + 12, 4);
      flags |= bad_bit;
      std::memcpy(bytes.data() + 12, &flags, 4);
      reseal_header_v2(bytes);
      const std::string path = tmp.file("flags.mpxs");
      write_file(path, bytes);
      expect_throws_with([&] { (void)io::load_snapshot(path); },
                         {"unknown flag bits"});
      expect_throws_with([&] { (void)io::read_snapshot_info(path); },
                         {"unknown flag bits"});
    }
  }
}

TEST(SnapshotV2Conformance, NonzeroReservedBytesRejected) {
  // Rule: reserved header bytes must be zero so future versions can claim
  // them; both reserved0 (offset 100) and reserved[48] (offset 144+).
  TempDir tmp("snapv2");
  for (const std::string& name : v2_golden_names()) {
    for (const std::size_t at : {std::size_t{100}, std::size_t{144},
                                 std::size_t{167}, std::size_t{191}}) {
      SCOPED_TRACE(name + " reserved byte " + std::to_string(at));
      std::string bytes = read_file_or_fail(golden_path(name));
      bytes[at] = 1;
      reseal_header_v2(bytes);
      const std::string path = tmp.file("reserved.mpxs");
      write_file(path, bytes);
      expect_throws_with([&] { (void)io::load_snapshot(path); },
                         {"nonzero reserved header bytes"});
      expect_throws_with([&] { (void)io::read_snapshot_info(path); },
                         {"nonzero reserved header bytes"});
    }
  }
}

TEST(SnapshotV2Conformance, HeaderChecksumGuardsEveryHeaderField) {
  // Without re-sealing, any header mutation — even in fields with
  // otherwise-valid values — fails the header checksum first.
  TempDir tmp("snapv2");
  std::string bytes = read_file_or_fail(golden_path("grid_3x3_v2_cold.mpxs"));
  bytes[17] ^= 0x01;  // num_vertices, second byte
  const std::string path = tmp.file("hdr.mpxs");
  write_file(path, bytes);
  expect_throws_with([&] { (void)io::load_snapshot(path); },
                     {"header checksum mismatch"});
}

TEST(SnapshotV2Conformance, InfoReportsVersionWithoutPayloadValidation) {
  // Rule: read_snapshot_info validates only the header, so it must
  // succeed — and report the right version/tier — on a file whose payload
  // is corrupt, while the loading readers reject the same file.
  TempDir tmp("snapv2");
  struct Case {
    const char* name;
    std::uint32_t version;
    bool cold;
  };
  for (const Case& c : {Case{"grid_3x3.mpxs", 1, false},
                        Case{"grid_3x3_v2.mpxs", 2, false},
                        Case{"grid_3x3_v2_cold.mpxs", 2, true}}) {
    SCOPED_TRACE(c.name);
    std::string bytes = read_file_or_fail(golden_path(c.name));
    const std::size_t header_bytes = c.version == 1
                                         ? io::kSnapshotHeaderBytes
                                         : io::kSnapshotHeaderBytesV2;
    bytes[header_bytes + 1] ^= 0x40;  // first section payload byte flipped
    const std::string path = tmp.file("payload.mpxs");
    write_file(path, bytes);
    const io::SnapshotInfo info = io::read_snapshot_info(path);
    EXPECT_EQ(info.version, c.version);
    EXPECT_EQ(info.cold(), c.cold);
    EXPECT_EQ(info.num_vertices, 9u);
    EXPECT_THROW((void)io::load_snapshot(path), std::runtime_error);
    EXPECT_THROW((void)io::verify_snapshot(path), std::runtime_error);
  }
}

TEST(SnapshotV2Conformance, VersionFieldSelectsHeaderSize) {
  // A 128-byte v1-sized file relabeled version 2 must be rejected as
  // shorter than the v2 header, not parsed with garbage v2 fields.
  TempDir tmp("snapv2");
  std::string bytes =
      read_file_or_fail(golden_path("grid_3x3.mpxs")).substr(0, 128);
  bytes[8] = 2;
  const std::string path = tmp.file("short.mpxs");
  write_file(path, bytes);
  expect_throws_with([&] { (void)io::read_snapshot_info(path); },
                     {"192-byte version-2 header"});
}

// ---------------------------------------------------------------------------
// Tier round trips
// ---------------------------------------------------------------------------

TEST(SnapshotV2, TierConversionReproducesSectionsByteIdentically) {
  // Hot save -> load -> cold save -> load -> hot save again: the final hot
  // bytes equal the first, so the cold tier is lossless at the byte level,
  // and the loaded spans match the original graph exactly.
  TempDir tmp("snapv2");
  for (const NamedGraph& ng : mpx::testing::small_graphs()) {
    SCOPED_TRACE(ng.name);
    io::SnapshotWriteOptions hot;
    hot.tier = io::SnapshotTier::kHot;
    io::SnapshotWriteOptions cold;
    cold.tier = io::SnapshotTier::kCold;
    cold.block_size = 16;  // force multi-block layouts on small fixtures

    const std::string hot_a = tmp.file(ng.name + "_a.mpxs");
    io::save_snapshot(hot_a, ng.graph, hot);
    const std::string cold_path = tmp.file(ng.name + "_cold.mpxs");
    io::save_snapshot(cold_path, io::load_snapshot(hot_a), cold);

    const CsrGraph from_cold = io::load_snapshot(cold_path);
    expect_same_graph(from_cold, ng.graph);

    const std::string hot_b = tmp.file(ng.name + "_b.mpxs");
    io::save_snapshot(hot_b, from_cold, hot);
    EXPECT_EQ(read_file_or_fail(hot_a), read_file_or_fail(hot_b));
  }
}

TEST(SnapshotV2, ColdWriterIsByteStable) {
  TempDir tmp("snapv2");
  const CsrGraph g = generators::rmat(9, 6.0, 7);
  io::SnapshotWriteOptions cold;
  cold.tier = io::SnapshotTier::kCold;
  cold.block_size = 128;
  const std::string a = tmp.file("a.mpxs");
  const std::string b = tmp.file("b.mpxs");
  io::save_snapshot(a, g, cold);
  io::save_snapshot(b, g, cold);
  EXPECT_EQ(read_file_or_fail(a), read_file_or_fail(b));
  // save(load(save)) is byte-identical: the cold form is canonical too.
  const std::string c = tmp.file("c.mpxs");
  io::save_snapshot(c, io::load_snapshot(a), cold);
  EXPECT_EQ(read_file_or_fail(a), read_file_or_fail(c));
}

TEST(SnapshotV2, WeightedTierRoundTrip) {
  TempDir tmp("snapv2");
  const WeightedCsrGraph wg = mpx::testing::grid3x3_weighted_reference();
  io::SnapshotWriteOptions cold;
  cold.tier = io::SnapshotTier::kCold;
  cold.block_size = 8;
  const std::string path = tmp.file("w.mpxs");
  io::save_snapshot(path, wg, cold);
  for (const WeightedCsrGraph& back :
       {io::load_weighted_snapshot(path), io::map_weighted_snapshot(path)}) {
    expect_same_graph(back.topology(), wg.topology());
    EXPECT_TRUE(std::equal(back.weights().begin(), back.weights().end(),
                           wg.weights().begin()));
  }
}

TEST(SnapshotV2, ColdTierCompressesRealGraphs) {
  // The acceptance-level compression bar is measured on rmat(20) in
  // bench/BENCH_snapshot.json; this pins a cheaper proxy so a codec
  // regression fails the suite, not just the bench.
  TempDir tmp("snapv2");
  const CsrGraph g = generators::rmat(12, 8.0, 1);
  io::SnapshotWriteOptions hot;
  hot.tier = io::SnapshotTier::kHot;
  io::SnapshotWriteOptions cold;
  cold.tier = io::SnapshotTier::kCold;
  const std::string hot_path = tmp.file("hot.mpxs");
  const std::string cold_path = tmp.file("cold.mpxs");
  io::save_snapshot(hot_path, g, hot);
  io::save_snapshot(cold_path, g, cold);
  const double ratio =
      static_cast<double>(read_file_or_fail(hot_path).size()) /
      static_cast<double>(read_file_or_fail(cold_path).size());
  EXPECT_GE(ratio, 2.0) << "cold tier regressed below 2x on rmat(12)";
  expect_same_graph(io::load_snapshot(cold_path), g);
}

TEST(SnapshotV2, DecompositionIdenticalOnColdLoadedGraphAcrossThreads) {
  // A decomposition computed on a cold-loaded graph must be exactly the
  // one computed on the in-memory graph — at every thread count, since the
  // loaded spans are byte-identical and partition() is seed-deterministic.
  TempDir tmp("snapv2");
  const CsrGraph g = generators::grid2d(24, 24);
  io::SnapshotWriteOptions cold;
  cold.tier = io::SnapshotTier::kCold;
  cold.block_size = 256;
  const std::string path = tmp.file("dec.mpxs");
  io::save_snapshot(path, g, cold);
  const CsrGraph loaded = io::load_snapshot(path);

  PartitionOptions opt;
  opt.beta = 0.2;
  opt.seed = 42;
  for (const int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ScopedNumThreads scoped(threads);
    const Decomposition expected = partition(g, opt);
    const Decomposition got = partition(loaded, opt);
    ASSERT_EQ(got.num_clusters(), expected.num_clusters());
    EXPECT_TRUE(std::equal(got.assignment().begin(), got.assignment().end(),
                           expected.assignment().begin()));
    EXPECT_TRUE(std::equal(got.dists_to_center().begin(),
                           got.dists_to_center().end(),
                           expected.dists_to_center().begin()));
  }
}

TEST(SnapshotV2, WriteOptionsValidated) {
  TempDir tmp("snapv2");
  const CsrGraph g = generators::grid2d(3, 3);
  const std::string path = tmp.file("opt.mpxs");

  io::SnapshotWriteOptions cold_v1;
  cold_v1.version = io::kSnapshotVersion;
  cold_v1.tier = io::SnapshotTier::kCold;
  expect_throws_with([&] { io::save_snapshot(path, g, cold_v1); },
                     {"cold tier requires format version 2"});

  io::SnapshotWriteOptions bad_version;
  bad_version.version = 9;
  expect_throws_with([&] { io::save_snapshot(path, g, bad_version); },
                     {"cannot write format version"});

  io::SnapshotWriteOptions tiny_blocks;
  tiny_blocks.tier = io::SnapshotTier::kCold;
  tiny_blocks.block_size = 1;
  expect_throws_with([&] { io::save_snapshot(path, g, tiny_blocks); },
                     {"block_size"});

  // version=1 + hot tier routes to the byte-stable legacy writer.
  io::SnapshotWriteOptions v1;
  v1.version = io::kSnapshotVersion;
  io::save_snapshot(path, g, v1);
  EXPECT_EQ(read_file_or_fail(path),
            read_file_or_fail(golden_path("grid_3x3.mpxs")));
}

// ---------------------------------------------------------------------------
// Corruption: truncation sweep, seeded bit flips, block-index attacks
// ---------------------------------------------------------------------------

TEST(SnapshotV2Corruption, EveryTruncationPointRejected) {
  // The exact-file-size rule means *every* proper prefix of a well-formed
  // snapshot is invalid; sweep them all, byte by byte, over a hot and a
  // multi-block cold fixture. (These fixtures are a few hundred bytes, so
  // the full sweep stays cheap even in Debug/ASan CI.)
  TempDir tmp("snapv2");
  for (const char* name : {"grid_3x3_v2.mpxs", "grid_3x3_v2_cold.mpxs",
                           "grid_16x16_v2_cold.mpxs"}) {
    SCOPED_TRACE(name);
    const std::string good = read_file_or_fail(golden_path(name));
    const std::string path = tmp.file("trunc.mpxs");
    for (std::size_t keep = 0; keep < good.size(); ++keep) {
      write_file(path, good.substr(0, keep));
      EXPECT_THROW((void)io::load_snapshot(path), std::runtime_error)
          << "accepted a " << keep << "-byte prefix";
      EXPECT_THROW((void)io::read_snapshot_info(path), std::runtime_error)
          << "info accepted a " << keep << "-byte prefix";
    }
  }
}

TEST(SnapshotV2Corruption, SeededBitFlipsDetectedOrHarmless) {
  // Property: flipping any single bit of a v2 snapshot either makes every
  // reader throw (detected) or leaves a file that still decodes to the
  // original graph (the flip landed in alignment padding, which no
  // checksum covers but no decoder reads). Anything else — a crash, an
  // abort, or a *different* graph — is a conformance failure. Replay one
  // seed with MPX_TEST_SEED=<n>.
  TempDir tmp("snapv2");
  const std::string good =
      read_file_or_fail(golden_path("grid_16x16_v2_cold.mpxs"));
  const CsrGraph original = generators::grid2d(16, 16);
  const std::string path = tmp.file("flip.mpxs");
  mpx::testing::for_each_seed(12, [&](std::uint64_t seed) {
    Xoshiro256pp rng(seed ^ 0x5eed);
    for (int round = 0; round < 32; ++round) {
      const std::size_t bit = rng.next_below(8 * good.size());
      std::string bad = good;
      bad[bit / 8] = static_cast<char>(bad[bit / 8] ^ (1u << (bit % 8)));
      write_file(path, bad);
      try {
        const CsrGraph loaded = io::load_snapshot(path);
        // Undetected: must be byte-equivalent to the pristine graph.
        ASSERT_EQ(loaded.num_vertices(), original.num_vertices())
            << "bit " << bit;
        ASSERT_TRUE(std::equal(loaded.offsets().begin(),
                               loaded.offsets().end(),
                               original.offsets().begin()))
            << "bit " << bit;
        ASSERT_TRUE(std::equal(loaded.targets().begin(),
                               loaded.targets().end(),
                               original.targets().begin()))
            << "bit " << bit;
      } catch (const std::runtime_error&) {
        // Detected: the expected outcome for any covered byte.
      }
    }
  });
}

class SnapshotV2BlockIndexAttack : public ::testing::Test {
 protected:
  void SetUp() override {
    good_ = read_file_or_fail(golden_path("grid_16x16_v2_cold.mpxs"));
    std::memcpy(&header_, good_.data(), sizeof(header_));
    ASSERT_NE(header_.flags & io::kSnapshotFlagColdTargets, 0u);
    ASSERT_GE(header_.block_index_bytes / sizeof(io::codec::BlockIndexEntry),
              2u);
    path_ = tmp_.file("attack.mpxs");
  }

  /// Returns a mutable view of index entry `b` inside `file`.
  static io::codec::BlockIndexEntry read_entry(const std::string& file,
                                               std::size_t b) {
    io::SnapshotHeaderV2 h{};
    std::memcpy(&h, file.data(), sizeof(h));
    io::codec::BlockIndexEntry e{};
    std::memcpy(&e,
                file.data() + h.block_index_offset +
                    b * sizeof(io::codec::BlockIndexEntry),
                sizeof(e));
    return e;
  }

  static void write_entry(std::string& file, std::size_t b,
                          const io::codec::BlockIndexEntry& e) {
    io::SnapshotHeaderV2 h{};
    std::memcpy(&h, file.data(), sizeof(h));
    std::memcpy(file.data() + h.block_index_offset +
                    b * sizeof(io::codec::BlockIndexEntry),
                &e, sizeof(e));
  }

  void expect_rejected(const std::string& bytes,
                       const std::string& needle) {
    SCOPED_TRACE(needle);
    write_file(path_, bytes);
    expect_throws_with([&] { (void)io::load_snapshot(path_); }, {needle});
    expect_throws_with([&] { (void)io::verify_snapshot_deep(path_); },
                       {needle});
  }

  TempDir tmp_{"snapv2-attack"};
  std::string path_;
  std::string good_;
  io::SnapshotHeaderV2 header_{};
};

TEST_F(SnapshotV2BlockIndexAttack, TamperedIndexFailsItsChecksum) {
  std::string bad = good_;
  io::codec::BlockIndexEntry e = read_entry(bad, 0);
  e.count += 1;
  write_entry(bad, 0, e);
  expect_rejected(bad, "block index checksum mismatch");
}

TEST_F(SnapshotV2BlockIndexAttack, OverlappingBlocksRejected) {
  // Inflating block 0's count would make it overlap block 1's arc range;
  // the fixed count formula rejects it even behind re-sealed checksums.
  std::string bad = good_;
  io::codec::BlockIndexEntry e = read_entry(bad, 0);
  e.count += 1;
  write_entry(bad, 0, e);
  reseal_block_index_v2(bad);
  expect_rejected(bad, "arc count does not match its arc range");
}

TEST_F(SnapshotV2BlockIndexAttack, CountOverrunRejected) {
  // The final block claiming more arcs than num_arcs leaves is the
  // classic read-past-the-end attack.
  const std::size_t last =
      header_.block_index_bytes / sizeof(io::codec::BlockIndexEntry) - 1;
  std::string bad = good_;
  io::codec::BlockIndexEntry e = read_entry(bad, last);
  e.count += 8;
  write_entry(bad, last, e);
  reseal_block_index_v2(bad);
  expect_rejected(bad, "arc count does not match its arc range");
}

TEST_F(SnapshotV2BlockIndexAttack, PayloadLengthsMustTileTargetsSection) {
  // Shrinking one byte_len shifts every later block's payload window; the
  // tiling check catches it before any bitstream is read.
  std::string bad = good_;
  io::codec::BlockIndexEntry e = read_entry(bad, 0);
  ASSERT_GT(e.byte_len, 0u);
  e.byte_len -= 1;
  write_entry(bad, 0, e);
  reseal_block_index_v2(bad);
  expect_rejected(bad, "do not tile the targets section");
}

TEST_F(SnapshotV2BlockIndexAttack, FirstTargetOutOfRangeRejected) {
  std::string bad = good_;
  io::codec::BlockIndexEntry e = read_entry(bad, 0);
  e.first_target = static_cast<std::uint32_t>(header_.num_vertices);
  write_entry(bad, 0, e);
  reseal_block_index_v2(bad);
  expect_rejected(bad, "first_target out of range");
}

TEST_F(SnapshotV2BlockIndexAttack, UndersizedPayloadRejected) {
  // byte_len below the structural minimum (code table + >= 1 bit per
  // coded arc) is rejected by arithmetic alone — the DoS guard that stops
  // a tiny file from claiming a huge arc count. Tampering two blocks
  // keeps the tiling sum intact so the minimum-length check must fire.
  std::string bad = good_;
  io::codec::BlockIndexEntry e0 = read_entry(bad, 0);
  io::codec::BlockIndexEntry e1 = read_entry(bad, 1);
  const std::uint32_t stolen = e0.byte_len - 1;  // leave 1 byte in block 0
  e0.byte_len -= stolen;
  e1.byte_len += stolen;
  write_entry(bad, 0, e0);
  write_entry(bad, 1, e1);
  reseal_block_index_v2(bad);
  expect_rejected(bad, "payload shorter than its arc count allows");
}

// ---------------------------------------------------------------------------
// Codec-level malformed input (decoder unit surface)
// ---------------------------------------------------------------------------

TEST(SnapshotV2Codec, DegreeStreamVarintCannotOverrunSection) {
  // A continuation bit on the final byte promises more bytes than the
  // section holds.
  const std::vector<unsigned char> overrun = {0x80};
  expect_throws_with(
      [&] { (void)io::codec::decode_degree_section(overrun, 1, 0); },
      {"varint overruns"});
}

TEST(SnapshotV2Codec, OverlongVarintRejected) {
  // Ten continuation bytes encode > 64 bits: overlong by construction.
  const std::vector<unsigned char> overlong(10, 0xFF);
  expect_throws_with(
      [&] { (void)io::codec::decode_degree_section(overlong, 1, 0); },
      {"overlong varint"});
}

TEST(SnapshotV2Codec, DegreesMustSumToArcCount) {
  // grid path 0-1-2: degrees 1,2,1 = 4 arcs; claim 5.
  std::vector<unsigned char> bytes;
  for (const unsigned degree : {1u, 2u, 1u}) {
    io::codec::varint_append(degree, bytes);
  }
  expect_throws_with(
      [&] { (void)io::codec::decode_degree_section(bytes, 3, 5); },
      {"degrees do not sum"});
  expect_throws_with(
      [&] { (void)io::codec::decode_degree_section(bytes, 2, 3); },
      {"trailing bytes"});
}

TEST(SnapshotV2Codec, DegreeAboveVertexCountRejected) {
  // Strictly ascending runs cap every degree at n; a claimed degree of
  // 2^40 must be rejected *before* any allocation sized from it.
  std::vector<unsigned char> bytes;
  io::codec::varint_append(1ull << 40, bytes);
  expect_throws_with(
      [&] { (void)io::codec::decode_degree_section(bytes, 1, 0); },
      {"degree exceeds num_vertices"});
}

TEST(SnapshotV2Codec, EncoderRequiresCanonicalAscendingRuns) {
  // The cold encoder refuses non-canonical CSR (descending run) instead
  // of producing an undecodable block.
  const std::vector<edge_t> offsets = {0, 2};
  const std::vector<vertex_t> targets = {1, 0};  // descending
  std::vector<unsigned char> payload;
  io::codec::BlockIndexEntry entry{};
  expect_throws_with(
      [&] {
        io::codec::encode_target_block(offsets, targets, 0, 2, payload,
                                       entry);
      },
      {"strictly ascending"});
}

TEST(SnapshotV2Codec, DecoderRejectsTruncatedAndPaddedPayloads) {
  // Encode a healthy block, then attack its payload framing directly:
  // truncation (bitstream overrun) and an extra trailing byte (the
  // zero-padding rule makes byte_len unambiguous).
  const std::vector<edge_t> offsets = {0, 3, 6};
  const std::vector<vertex_t> targets = {1, 5, 9, 0, 4, 8};
  std::vector<unsigned char> payload;
  io::codec::BlockIndexEntry entry{};
  io::codec::encode_target_block(offsets, targets, 0, 6, payload, entry);
  ASSERT_EQ(entry.byte_len, payload.size());
  std::vector<vertex_t> out(6);

  // Sanity: the pristine payload round-trips.
  io::codec::decode_target_block(offsets, 0, entry, payload, 10, out);
  EXPECT_TRUE(std::equal(out.begin(), out.end(), targets.begin()));

  io::codec::BlockIndexEntry shorter = entry;
  shorter.byte_len -= 1;
  const std::span<const unsigned char> truncated{payload.data(),
                                                 payload.size() - 1};
  EXPECT_THROW(io::codec::decode_target_block(offsets, 0, shorter, truncated,
                                              10, out),
               std::runtime_error);

  std::vector<unsigned char> padded = payload;
  padded.push_back(0);
  io::codec::BlockIndexEntry longer = entry;
  longer.byte_len += 1;
  EXPECT_THROW(
      io::codec::decode_target_block(offsets, 0, longer, padded, 10, out),
      std::runtime_error);

  // Out-of-range decode: shrink num_vertices below the largest target.
  EXPECT_THROW(
      io::codec::decode_target_block(offsets, 0, entry, payload, 9, out),
      std::runtime_error);
}

}  // namespace
}  // namespace mpx
