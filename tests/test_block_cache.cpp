// Tests for the cold-tier block reader and the bounded LRU block cache
// (src/graph/snapshot_blocks.*): per-vertex adjacency correctness against
// the in-memory graph (including runs stitched across block boundaries),
// the residency bound, hit/miss/eviction accounting, lazy per-block
// checksum verification, and materialize() equivalence with the eager
// loaders.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/snapshot.hpp"
#include "graph/snapshot_blocks.hpp"
#include "tests/support/fixtures.hpp"
#include "tests/support/golden.hpp"
#include "tests/support/temp_dir.hpp"

namespace mpx {
namespace {

using mpx::testing::golden_path;
using mpx::testing::TempDir;

/// Saves `g` cold and opens a reader on the file.
std::shared_ptr<const io::SnapshotBlockReader> cold_reader(
    const TempDir& tmp, const CsrGraph& g, std::uint32_t block_size) {
  const std::string path = tmp.file("cache.mpxs");
  io::SnapshotWriteOptions cold;
  cold.tier = io::SnapshotTier::kCold;
  cold.block_size = block_size;
  io::save_snapshot(path, g, cold);
  return std::make_shared<io::SnapshotBlockReader>(path);
}

TEST(SnapshotBlockReader, GeometryMatchesGraph) {
  TempDir tmp("blockcache");
  const CsrGraph g = generators::grid2d(20, 20);
  const auto reader = cold_reader(tmp, g, 32);
  EXPECT_EQ(reader->num_vertices(), g.num_vertices());
  EXPECT_EQ(reader->num_arcs(), g.num_arcs());
  EXPECT_EQ(reader->block_size(), 32u);
  EXPECT_EQ(reader->num_blocks(), (g.num_arcs() + 31) / 32);
  EXPECT_FALSE(reader->weighted());
  EXPECT_TRUE(std::equal(reader->offsets().begin(), reader->offsets().end(),
                         g.offsets().begin()));
  for (std::size_t b = 0; b < reader->num_blocks(); ++b) {
    EXPECT_EQ(reader->block_arc_begin(b), 32u * b);
    EXPECT_EQ(reader->block_of_arc(reader->block_arc_begin(b)), b);
  }
  EXPECT_EQ(reader->block_of_arc(g.num_arcs() - 1),
            reader->num_blocks() - 1);
}

TEST(SnapshotBlockReader, DecodeBlockReproducesTargetSlices) {
  TempDir tmp("blockcache");
  const CsrGraph g = generators::rmat(9, 6.0, 3);
  const auto reader = cold_reader(tmp, g, 64);
  std::vector<vertex_t> out;
  for (std::size_t b = 0; b < reader->num_blocks(); ++b) {
    out.assign(reader->block_arc_count(b), 0);
    reader->decode_block(b, out);
    const auto begin = g.targets().begin() +
                       static_cast<std::ptrdiff_t>(reader->block_arc_begin(b));
    EXPECT_TRUE(std::equal(out.begin(), out.end(), begin)) << "block " << b;
  }
}

TEST(SnapshotBlockReader, MaterializeEqualsEagerLoad) {
  TempDir tmp("blockcache");
  const CsrGraph g = generators::rmat(10, 5.0, 11);
  const std::string path = tmp.file("mat.mpxs");
  io::SnapshotWriteOptions cold;
  cold.tier = io::SnapshotTier::kCold;
  cold.block_size = 128;
  io::save_snapshot(path, g, cold);

  const io::SnapshotBlockReader reader(path);
  const CsrGraph materialized = reader.materialize();
  const CsrGraph loaded = io::load_snapshot(path);
  ASSERT_EQ(materialized.num_arcs(), loaded.num_arcs());
  EXPECT_TRUE(std::equal(materialized.offsets().begin(),
                         materialized.offsets().end(),
                         loaded.offsets().begin()));
  EXPECT_TRUE(std::equal(materialized.targets().begin(),
                         materialized.targets().end(),
                         loaded.targets().begin()));
}

TEST(SnapshotBlockReader, RejectsHotTierFiles) {
  TempDir tmp("blockcache");
  const CsrGraph g = generators::grid2d(4, 4);
  const std::string path = tmp.file("hot.mpxs");
  io::SnapshotWriteOptions hot;
  hot.tier = io::SnapshotTier::kHot;
  io::save_snapshot(path, g, hot);
  EXPECT_THROW((void)io::SnapshotBlockReader(path), std::runtime_error);
  EXPECT_THROW((void)io::SnapshotBlockReader(golden_path("grid_3x3.mpxs")),
               std::runtime_error);
}

TEST(SnapshotBlockReader, LazyBlockChecksumCatchesPayloadFlip) {
  // The constructor validates header/index/offsets eagerly but payload
  // blocks lazily: a flipped payload byte surfaces on decode_block, not
  // on open.
  TempDir tmp("blockcache");
  const CsrGraph g = generators::grid2d(16, 16);
  const std::string path = tmp.file("lazy.mpxs");
  io::SnapshotWriteOptions cold;
  cold.tier = io::SnapshotTier::kCold;
  cold.block_size = 64;
  io::save_snapshot(path, g, cold);

  std::string bytes = mpx::testing::read_file_or_fail(path);
  io::SnapshotHeaderV2 h{};
  std::memcpy(&h, bytes.data(), sizeof(h));
  bytes[h.targets_offset] = static_cast<char>(bytes[h.targets_offset] ^ 0x10);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  const io::SnapshotBlockReader reader(path);  // opens fine: lazy payloads
  std::vector<vertex_t> out(reader.block_arc_count(0));
  EXPECT_THROW(reader.decode_block(0, out), std::runtime_error);
  EXPECT_THROW((void)reader.materialize(), std::runtime_error);
}

TEST(BlockCache, NeighborsMatchInMemoryGraphEverywhere) {
  TempDir tmp("blockcache");
  const CsrGraph g = generators::rmat(9, 8.0, 5);
  const auto reader = cold_reader(tmp, g, 32);
  io::BlockCache cache(reader, /*max_resident_blocks=*/4);

  std::size_t crossing_runs = 0;
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    const auto expected = g.neighbors(v);
    const auto got = cache.neighbors(v);
    ASSERT_EQ(got.size(), expected.size()) << "v=" << v;
    ASSERT_TRUE(std::equal(got.begin(), got.end(), expected.begin()))
        << "v=" << v;
    if (expected.size() > 1 &&
        reader->block_of_arc(g.offsets()[v]) !=
            reader->block_of_arc(g.offsets()[v + 1] - 1)) {
      ++crossing_runs;
    }
  }
  // The fixture must actually exercise the stitched path.
  EXPECT_GT(crossing_runs, 0u);
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(BlockCache, ResidencyStaysBounded) {
  TempDir tmp("blockcache");
  const CsrGraph g = generators::grid2d(24, 24);
  const auto reader = cold_reader(tmp, g, 16);
  ASSERT_GT(reader->num_blocks(), 8u);
  io::BlockCache cache(reader, /*max_resident_blocks=*/3);

  for (vertex_t v = 0; v < g.num_vertices(); v = v + 7) {
    (void)cache.neighbors(v);
    ASSERT_LE(cache.stats().resident_blocks, 3u);
  }
  const io::BlockCache::Stats& s = cache.stats();
  EXPECT_GT(s.misses, 0u);
  EXPECT_GT(s.evictions, 0u);
  EXPECT_EQ(s.misses, s.evictions + s.resident_blocks);
}

TEST(BlockCache, RepeatedAccessHitsWithoutDecoding) {
  TempDir tmp("blockcache");
  const CsrGraph g = generators::grid2d(10, 10);
  const auto reader = cold_reader(tmp, g, 64);
  io::BlockCache cache(reader, reader->num_blocks());

  (void)cache.block(0);
  const std::size_t misses_after_first = cache.stats().misses;
  for (int i = 0; i < 5; ++i) (void)cache.block(0);
  EXPECT_EQ(cache.stats().misses, misses_after_first);
  EXPECT_GE(cache.stats().hits, 5u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(BlockCache, LruEvictsTheColdestBlock) {
  TempDir tmp("blockcache");
  const CsrGraph g = generators::grid2d(24, 24);
  const auto reader = cold_reader(tmp, g, 16);
  ASSERT_GE(reader->num_blocks(), 3u);
  io::BlockCache cache(reader, /*max_resident_blocks=*/2);

  (void)cache.block(0);
  (void)cache.block(1);
  (void)cache.block(0);  // touch 0: block 1 is now LRU
  (void)cache.block(2);  // evicts 1
  const std::size_t misses_before = cache.stats().misses;
  (void)cache.block(0);  // still resident: hit
  EXPECT_EQ(cache.stats().misses, misses_before);
  (void)cache.block(1);  // was evicted: miss
  EXPECT_EQ(cache.stats().misses, misses_before + 1);
}

TEST(BlockCache, SingleBlockSpansAliasTheCache) {
  // A run inside one block is served as a zero-copy subspan of the cached
  // block, not a copy into scratch.
  TempDir tmp("blockcache");
  const CsrGraph g = generators::grid2d(8, 8);
  // One giant block: every run is the single-block case.
  const auto reader =
      cold_reader(tmp, g, static_cast<std::uint32_t>(g.num_arcs()));
  ASSERT_EQ(reader->num_blocks(), 1u);
  io::BlockCache cache(reader, 1);
  const auto block = cache.block(0);
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = cache.neighbors(v);
    if (!nbrs.empty()) {
      EXPECT_EQ(nbrs.data(), block.data() + g.offsets()[v]) << "v=" << v;
    }
  }
}

TEST(BlockCache, WeightedReaderExposesRawWeights) {
  TempDir tmp("blockcache");
  const WeightedCsrGraph wg = mpx::testing::grid3x3_weighted_reference();
  const std::string path = tmp.file("w.mpxs");
  io::SnapshotWriteOptions cold;
  cold.tier = io::SnapshotTier::kCold;
  cold.block_size = 8;
  io::save_snapshot(path, wg, cold);

  const auto reader = std::make_shared<io::SnapshotBlockReader>(path);
  EXPECT_TRUE(reader->weighted());
  ASSERT_EQ(reader->weights().size(), wg.weights().size());
  EXPECT_TRUE(std::equal(reader->weights().begin(), reader->weights().end(),
                         wg.weights().begin()));
  const WeightedCsrGraph materialized = reader->materialize_weighted();
  EXPECT_TRUE(std::equal(materialized.weights().begin(),
                         materialized.weights().end(),
                         wg.weights().begin()));
}

}  // namespace
}  // namespace mpx
