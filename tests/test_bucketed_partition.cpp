// Tests for the parallel bucketed weighted partition: exact agreement
// with the sequential shifted Dijkstra on integer weights, plus its own
// structural guarantees.
#include <gtest/gtest.h>

#include <cmath>

#include "core/bucketed_partition.hpp"
#include "core/partition.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "parallel/thread_env.hpp"
#include "support/random.hpp"
#include "tests/support/invariants.hpp"

namespace mpx {
namespace {

using namespace mpx::generators;

WeightedCsrGraph integer_weights(const CsrGraph& g, std::uint64_t seed,
                                 std::uint32_t max_w) {
  const std::vector<Edge> edges = edge_list(g);
  std::vector<WeightedEdge> weighted;
  weighted.reserve(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const double w =
        1.0 + static_cast<double>(hash_stream(seed, i) % max_w);
    weighted.push_back({edges[i].u, edges[i].v, w});
  }
  return build_undirected_weighted(g.num_vertices(),
                                   std::span<const WeightedEdge>(weighted));
}

PartitionOptions opts(double beta, std::uint64_t seed) {
  PartitionOptions o;
  o.beta = beta;
  o.seed = seed;
  return o;
}

TEST(BucketedPartition, MatchesSequentialDijkstraExactly) {
  // Same shifts, fractional tie-break: the bucketed parallel run and the
  // sequential priority-queue run must produce identical assignments.
  const CsrGraph topologies[] = {grid2d(12, 12), cycle(80),
                                 erdos_renyi(150, 400, 3), barbell(8),
                                 complete_binary_tree(63)};
  for (const CsrGraph& topo : topologies) {
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      const WeightedCsrGraph g = integer_weights(topo, seed, 5);
      const Shifts shifts = generate_shifts(g.num_vertices(),
                                            opts(0.2, seed + 100));
      const WeightedDecomposition sequential =
          weighted_partition_with_shifts(g, shifts);
      const BucketedPartitionResult bucketed =
          bucketed_weighted_partition_with_shifts(g, shifts);
      ASSERT_EQ(bucketed.decomposition.centers, sequential.centers);
      ASSERT_EQ(bucketed.decomposition.assignment, sequential.assignment);
      ASSERT_TRUE(mpx::testing::check_weighted_decomposition_invariants(
          bucketed.decomposition, g, {.shifts = &shifts}));
      for (vertex_t v = 0; v < g.num_vertices(); ++v) {
        // The sequential reference accumulates real-valued keys, so its
        // integer distances carry ~1e-15 float noise; the bucketed run is
        // exact by construction.
        EXPECT_NEAR(bucketed.decomposition.dist_to_center[v],
                    sequential.dist_to_center[v], 1e-9);
      }
    }
  }
}

TEST(BucketedPartition, UnitWeightsMatchUnweightedPartition) {
  // With all weights 1 this is exactly Algorithm 1.
  const CsrGraph topo = grid2d(15, 15);
  const WeightedCsrGraph g = with_unit_weights(topo);
  const Shifts shifts = generate_shifts(topo.num_vertices(), opts(0.15, 9));
  const Decomposition unweighted = partition_with_shifts(topo, shifts);
  const BucketedPartitionResult bucketed =
      bucketed_weighted_partition_with_shifts(g, shifts);
  for (vertex_t v = 0; v < topo.num_vertices(); ++v) {
    EXPECT_EQ(
        bucketed.decomposition.centers[bucketed.decomposition.assignment[v]],
        unweighted.center(unweighted.cluster_of(v)));
    EXPECT_DOUBLE_EQ(bucketed.decomposition.dist_to_center[v],
                     static_cast<double>(unweighted.dist_to_center(v)));
  }
}

TEST(BucketedPartition, ClustersAreInternallyConnected) {
  const WeightedCsrGraph g = integer_weights(erdos_renyi(200, 600, 7), 5, 4);
  const BucketedPartitionResult r =
      bucketed_weighted_partition(g, opts(0.2, 6));
  for (cluster_t c = 0; c < r.decomposition.num_clusters(); ++c) {
    const Subgraph sub =
        extract_cluster(g.topology(), r.decomposition.assignment, c);
    EXPECT_TRUE(is_connected(sub.graph)) << "cluster " << c;
  }
  EXPECT_TRUE(mpx::testing::check_weighted_decomposition_invariants(
      r.decomposition, g, {.beta = 0.2}));
}

TEST(BucketedPartition, DeterministicAcrossThreadCounts) {
  const WeightedCsrGraph g = integer_weights(rmat(9, 4.0, 3), 2, 8);
  std::vector<cluster_t> one;
  std::vector<cluster_t> many;
  {
    ScopedNumThreads guard(1);
    one = bucketed_weighted_partition(g, opts(0.1, 4)).decomposition.assignment;
  }
  {
    ScopedNumThreads guard(max_threads());
    many =
        bucketed_weighted_partition(g, opts(0.1, 4)).decomposition.assignment;
  }
  EXPECT_EQ(one, many);
}

TEST(BucketedPartition, RoundsTrackShiftPlusWeightedRadius) {
  const WeightedCsrGraph g = integer_weights(grid2d(30, 30), 1, 3);
  PartitionOptions o = opts(0.1, 2);
  const Shifts shifts = generate_shifts(g.num_vertices(), o);
  const BucketedPartitionResult r =
      bucketed_weighted_partition_with_shifts(g, shifts);
  // Every vertex settles by its own activation round, so the round count
  // is at most max start + max arc weight + 1.
  EXPECT_LE(r.rounds,
            static_cast<std::uint32_t>(shifts.delta_max) + 3 + 1);
  EXPECT_GE(r.rounds, 1u);
}

TEST(BucketedPartition, LargerWeightsSlowTheSweep) {
  const CsrGraph topo = grid2d(20, 20);
  const Shifts shifts = generate_shifts(topo.num_vertices(), opts(0.2, 3));
  const BucketedPartitionResult light =
      bucketed_weighted_partition_with_shifts(with_unit_weights(topo), shifts);
  // Scale all weights by 4: same shifts now cut off searches 4x sooner in
  // weighted distance, so rounds grow (denser bucketing).
  std::vector<WeightedEdge> heavy_edges;
  for (const Edge& e : edge_list(topo)) {
    heavy_edges.push_back({e.u, e.v, 4.0});
  }
  const WeightedCsrGraph heavy = build_undirected_weighted(
      topo.num_vertices(), std::span<const WeightedEdge>(heavy_edges));
  const BucketedPartitionResult slow =
      bucketed_weighted_partition_with_shifts(heavy, shifts);
  EXPECT_GE(slow.rounds, light.rounds);
  // More clusters too: a center's shift window covers 4x less territory.
  EXPECT_GE(slow.decomposition.num_clusters(),
            light.decomposition.num_clusters());
}

TEST(BucketedPartition, InvariantBatteryAcrossTopologies) {
  const CsrGraph topologies[] = {grid2d(14, 14), barbell(10),
                                 caterpillar(20, 3), rmat(8, 4.0, 5)};
  for (const CsrGraph& topo : topologies) {
    const WeightedCsrGraph g = integer_weights(topo, 7, 6);
    PartitionOptions o = opts(0.2, 21);
    const Shifts shifts = generate_shifts(g.num_vertices(), o);
    const BucketedPartitionResult r =
        bucketed_weighted_partition_with_shifts(g, shifts);
    EXPECT_TRUE(mpx::testing::check_weighted_decomposition_invariants(
        r.decomposition, g, {.beta = 0.2, .shifts = &shifts}));
  }
}

TEST(BucketedPartition, SingleVertexAndEdgeless) {
  const std::vector<WeightedEdge> none;
  const WeightedCsrGraph one =
      build_undirected_weighted(1, std::span<const WeightedEdge>(none));
  EXPECT_EQ(bucketed_weighted_partition(one, opts(0.5, 1))
                .decomposition.num_clusters(),
            1u);
  const WeightedCsrGraph five =
      build_undirected_weighted(5, std::span<const WeightedEdge>(none));
  EXPECT_EQ(bucketed_weighted_partition(five, opts(0.5, 1))
                .decomposition.num_clusters(),
            5u);
}

}  // namespace
}  // namespace mpx
