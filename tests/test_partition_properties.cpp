// Property sweep for mpx::partition: Definition 1.1's two guarantees —
// cut fraction O(beta) in expectation (Corollary 4.5) and strong diameter
// O(log n / beta) w.h.p. (Lemma 4.2) — checked across graph families,
// beta values, seeds and tie-break modes with the hard structural verifier
// in the loop.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "core/metrics.hpp"
#include "core/partition.hpp"
#include "graph/generators.hpp"
#include "tests/support/invariants.hpp"

namespace mpx {
namespace {

using namespace mpx::generators;

CsrGraph family_graph(const std::string& name) {
  if (name == "grid") return grid2d(40, 40);
  if (name == "torus") return grid2d(32, 32, true);
  if (name == "path") return path(2000);
  if (name == "cycle") return cycle(1500);
  if (name == "tree") return complete_binary_tree(2047);
  if (name == "hypercube") return hypercube(10);
  if (name == "er") return erdos_renyi(1200, 4000, 99);
  if (name == "rmat") return rmat(10, 4.0, 77);
  if (name == "caterpillar") return caterpillar(300, 3);
  if (name == "matchings") return random_matching_union(1024, 4, 55);
  ADD_FAILURE() << "unknown family " << name;
  return {};
}

using Param = std::tuple<std::string, double, int>;

/// Readable test names: family_beta0p05_frac etc. (A named function: the
/// INSTANTIATE macro splits on commas, so lambdas with structured bindings
/// cannot be passed inline.)
std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  const std::string& family = std::get<0>(info.param);
  const double beta = std::get<1>(info.param);
  const int tb = std::get<2>(info.param);
  std::string name = family + "_beta";
  for (const char ch : std::to_string(beta)) {
    name += (ch == '.') ? 'p' : ch;
  }
  name += tb == static_cast<int>(TieBreak::kFractionalShift) ? "_frac"
                                                             : "_perm";
  return name;
}

class PartitionProperty : public ::testing::TestWithParam<Param> {};

TEST_P(PartitionProperty, StructurallyValidAndWithinBounds) {
  const auto& [family, beta, tb_int] = GetParam();
  const CsrGraph g = family_graph(family);
  const vertex_t n = g.num_vertices();

  PartitionOptions opt;
  opt.beta = beta;
  opt.tie_break = static_cast<TieBreak>(tb_int);

  double total_cut_fraction = 0.0;
  std::uint32_t worst_radius = 0;
  const int kSeeds = 3;
  for (int seed = 0; seed < kSeeds; ++seed) {
    opt.seed = static_cast<std::uint64_t>(seed) * 7919 + 13;
    const Shifts shifts = generate_shifts(n, opt);
    const Decomposition dec = partition_with_shifts(g, shifts);

    // Hard invariants (partition, connectivity, Lemma 4.1 distances,
    // shift-based radius bound) via the shared checker.
    ASSERT_TRUE(mpx::testing::check_decomposition_invariants(
        dec, g, {.beta = beta, .shifts = &shifts}))
        << family << " beta=" << beta << " seed=" << seed;

    const DecompositionStats s = analyze(dec, g);
    total_cut_fraction += s.cut_fraction;
    worst_radius = std::max(worst_radius, s.max_radius);
  }

  // Corollary 4.5 (averaged over seeds, generous constant): the expected
  // cut fraction is at most O(beta); empirically 1 - exp(-beta) <= beta.
  const double mean_cut = total_cut_fraction / kSeeds;
  EXPECT_LE(mean_cut, 4.0 * beta)
      << family << " beta=" << beta << " cut=" << mean_cut;

  // Lemma 4.2 w.h.p. bound with d = 2 and floor slack: radius never
  // exceeds 3 ln(n)/beta + 1 across our seeds.
  const double radius_bound =
      3.0 * std::log(static_cast<double>(n)) / beta + 1.0;
  EXPECT_LE(static_cast<double>(worst_radius), radius_bound)
      << family << " beta=" << beta;
}

INSTANTIATE_TEST_SUITE_P(
    Families, PartitionProperty,
    ::testing::Combine(
        ::testing::Values("grid", "torus", "path", "cycle", "tree",
                          "hypercube", "er", "rmat", "caterpillar",
                          "matchings"),
        ::testing::Values(0.05, 0.2, 0.5),
        ::testing::Values(static_cast<int>(TieBreak::kFractionalShift),
                          static_cast<int>(TieBreak::kRandomPermutation))),
    param_name);

/// Monotonicity in beta: finer beta (smaller) must produce fewer, larger,
/// wider clusters and fewer cut edges — the qualitative content of
/// Figure 1.
class BetaMonotonicity : public ::testing::TestWithParam<const char*> {};

TEST_P(BetaMonotonicity, CoarseBetaCutsFewerEdges) {
  const CsrGraph g = family_graph(GetParam());
  double prev_cut = -1.0;
  // Average over seeds to tame variance; trends must be monotone.
  for (const double beta : {0.02, 0.1, 0.5}) {
    double cut = 0.0;
    const int kSeeds = 5;
    for (int seed = 0; seed < kSeeds; ++seed) {
      PartitionOptions opt;
      opt.beta = beta;
      opt.seed = static_cast<std::uint64_t>(seed);
      cut += analyze(partition(g, opt), g).cut_fraction;
    }
    cut /= kSeeds;
    EXPECT_GT(cut, prev_cut) << "beta=" << beta;
    prev_cut = cut;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, BetaMonotonicity,
                         ::testing::Values("grid", "er", "path", "rmat"));

}  // namespace
}  // namespace mpx
