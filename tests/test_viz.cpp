// Tests for the PPM writer, palette, and grid renderer: determinism of the
// category palette (pinned RGB values), exact PPM bytes (inline and via the
// golden file), and owner-coloring of the grid renderer against both
// hand-authored and facade-produced decompositions.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>

#include "core/decomposer.hpp"
#include "graph/generators.hpp"
#include "tests/support/fixtures.hpp"
#include "tests/support/golden.hpp"
#include "viz/grid_render.hpp"
#include "viz/palette.hpp"
#include "viz/ppm.hpp"

namespace mpx {
namespace {

TEST(Palette, HsvPrimaries) {
  EXPECT_EQ(viz::hsv_to_rgb(0.0, 1.0, 1.0), (viz::Rgb{255, 0, 0}));
  EXPECT_EQ(viz::hsv_to_rgb(120.0, 1.0, 1.0), (viz::Rgb{0, 255, 0}));
  EXPECT_EQ(viz::hsv_to_rgb(240.0, 1.0, 1.0), (viz::Rgb{0, 0, 255}));
  EXPECT_EQ(viz::hsv_to_rgb(0.0, 0.0, 0.0), (viz::Rgb{0, 0, 0}));
  EXPECT_EQ(viz::hsv_to_rgb(0.0, 0.0, 1.0), (viz::Rgb{255, 255, 255}));
}

TEST(Palette, NegativeHueWraps) {
  EXPECT_EQ(viz::hsv_to_rgb(-360.0, 1.0, 1.0), viz::hsv_to_rgb(0.0, 1.0, 1.0));
}

TEST(Palette, FirstColorsAreDistinct) {
  std::set<std::uint32_t> seen;
  for (std::size_t i = 0; i < 64; ++i) {
    const viz::Rgb c = viz::category_color(i);
    seen.insert((static_cast<std::uint32_t>(c.r) << 16) |
                (static_cast<std::uint32_t>(c.g) << 8) | c.b);
  }
  EXPECT_GE(seen.size(), 60u);  // near-distinct; exact collisions are rare
}

TEST(Palette, MakePaletteMatchesCategoryColor) {
  const auto palette = viz::make_palette(10);
  ASSERT_EQ(palette.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(palette[i], viz::category_color(i));
  }
}

TEST(Image, PixelAccess) {
  viz::Image img(4, 3, {9, 8, 7});
  EXPECT_EQ(img.width(), 4u);
  EXPECT_EQ(img.height(), 3u);
  EXPECT_EQ(img.at(0, 0), (viz::Rgb{9, 8, 7}));
  img.at(2, 1) = {1, 2, 3};
  EXPECT_EQ(img.at(2, 1), (viz::Rgb{1, 2, 3}));
}

TEST(Image, PpmFormat) {
  viz::Image img(2, 2);
  img.at(0, 0) = {255, 0, 0};
  img.at(1, 1) = {0, 0, 255};
  std::ostringstream out;
  img.write_ppm(out);
  const std::string data = out.str();
  EXPECT_EQ(data.substr(0, 3), "P6\n");
  EXPECT_NE(data.find("2 2\n255\n"), std::string::npos);
  // Header + 12 bytes of pixels.
  const std::size_t header = data.find("255\n") + 4;
  EXPECT_EQ(data.size() - header, 12u);
  EXPECT_EQ(static_cast<unsigned char>(data[header]), 255u);  // red pixel
}

TEST(Image, SaveToFile) {
  viz::Image img(8, 8, {1, 2, 3});
  const std::string path = ::testing::TempDir() + "/mpx_viz_test.ppm";
  img.save_ppm(path);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "P6");
}

TEST(Image, SaveToBadPathThrows) {
  viz::Image img(2, 2);
  EXPECT_THROW(img.save_ppm("/nonexistent/dir/x.ppm"), std::runtime_error);
}

TEST(Palette, FirstColorsArePinned) {
  // The palette is part of the rendering contract: Figure-1 style images
  // must be bit-reproducible across runs and platforms, so the golden-angle
  // rotation's output is pinned here. A deliberate palette change must
  // update these values and regenerate the .ppm golden (regen_golden).
  const viz::Rgb expected[8] = {
      {242, 109, 109}, {73, 242, 122}, {157, 36, 242}, {212, 197, 95},
      {63, 187, 212},  {212, 32, 129}, {106, 181, 81}, {60, 54, 181},
  };
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(viz::category_color(i), expected[i]) << "index " << i;
  }
}

TEST(Palette, DeterministicAcrossCalls) {
  for (std::size_t i = 0; i < 512; ++i) {
    EXPECT_EQ(viz::category_color(i), viz::category_color(i));
  }
  EXPECT_EQ(viz::make_palette(512), viz::make_palette(512));
}

TEST(Image, PpmBytesArePinned) {
  // The exact serialized bytes of a 2x1 image: header then raw RGB.
  viz::Image img(2, 1);
  img.at(0, 0) = {1, 2, 3};
  img.at(1, 0) = {255, 254, 253};
  std::ostringstream out;
  img.write_ppm(out);
  const std::string expected =
      std::string("P6\n2 1\n255\n") +
      std::string("\x01\x02\x03\xff\xfe\xfd", 6);
  EXPECT_EQ(out.str(), expected);
}

TEST(GridRender, DimensionsAndClusterColors) {
  const vertex_t rows = 12;
  const vertex_t cols = 18;
  const CsrGraph g = generators::grid2d(rows, cols);
  DecompositionRequest req;
  req.beta = 0.3;
  req.seed = 5;
  const Decomposition dec = decompose(g, req).decomposition;
  const viz::Image img = viz::render_grid_decomposition(dec, rows, cols);
  EXPECT_EQ(img.width(), cols);
  EXPECT_EQ(img.height(), rows);
  // Every pixel carries its vertex's cluster color.
  for (vertex_t r = 0; r < rows; ++r) {
    for (vertex_t c = 0; c < cols; ++c) {
      EXPECT_EQ(img.at(c, r),
                viz::category_color(dec.cluster_of(r * cols + c)));
    }
  }
}

TEST(GridRender, OwnerColoringOfReferenceDecomposition) {
  // The hand-authored two-piece 3x3 decomposition renders as piece colors:
  // the top row in color 0, the rest in color 1 — owner-coloring pinned
  // without any dependence on partition()'s shift draws.
  const Decomposition dec = mpx::testing::grid3x3_reference_decomposition();
  const viz::Image img = viz::render_grid_decomposition(dec, 3, 3);
  for (vertex_t r = 0; r < 3; ++r) {
    for (vertex_t c = 0; c < 3; ++c) {
      const cluster_t expected = r == 0 ? 0 : 1;
      EXPECT_EQ(img.at(c, r), viz::category_color(expected))
          << "pixel (" << c << ", " << r << ")";
    }
  }
}

TEST(GridRender, GoldenPpmMatchesRenderer) {
  // Byte-level golden for the whole viz pipeline: reference decomposition
  // -> owner colors -> PPM serialization. Regenerate with regen_golden.
  const viz::Image img = viz::render_grid_decomposition(
      mpx::testing::grid3x3_reference_decomposition(), 3, 3);
  std::ostringstream out;
  img.write_ppm(out);
  EXPECT_EQ(out.str(), mpx::testing::read_file_or_fail(
                           mpx::testing::golden_path("grid_3x3_reference.ppm")));
}

}  // namespace
}  // namespace mpx
