// Tests for the PPM writer, palette, and grid renderer.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>

#include "core/partition.hpp"
#include "graph/generators.hpp"
#include "viz/grid_render.hpp"
#include "viz/palette.hpp"
#include "viz/ppm.hpp"

namespace mpx {
namespace {

TEST(Palette, HsvPrimaries) {
  EXPECT_EQ(viz::hsv_to_rgb(0.0, 1.0, 1.0), (viz::Rgb{255, 0, 0}));
  EXPECT_EQ(viz::hsv_to_rgb(120.0, 1.0, 1.0), (viz::Rgb{0, 255, 0}));
  EXPECT_EQ(viz::hsv_to_rgb(240.0, 1.0, 1.0), (viz::Rgb{0, 0, 255}));
  EXPECT_EQ(viz::hsv_to_rgb(0.0, 0.0, 0.0), (viz::Rgb{0, 0, 0}));
  EXPECT_EQ(viz::hsv_to_rgb(0.0, 0.0, 1.0), (viz::Rgb{255, 255, 255}));
}

TEST(Palette, NegativeHueWraps) {
  EXPECT_EQ(viz::hsv_to_rgb(-360.0, 1.0, 1.0), viz::hsv_to_rgb(0.0, 1.0, 1.0));
}

TEST(Palette, FirstColorsAreDistinct) {
  std::set<std::uint32_t> seen;
  for (std::size_t i = 0; i < 64; ++i) {
    const viz::Rgb c = viz::category_color(i);
    seen.insert((static_cast<std::uint32_t>(c.r) << 16) |
                (static_cast<std::uint32_t>(c.g) << 8) | c.b);
  }
  EXPECT_GE(seen.size(), 60u);  // near-distinct; exact collisions are rare
}

TEST(Palette, MakePaletteMatchesCategoryColor) {
  const auto palette = viz::make_palette(10);
  ASSERT_EQ(palette.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(palette[i], viz::category_color(i));
  }
}

TEST(Image, PixelAccess) {
  viz::Image img(4, 3, {9, 8, 7});
  EXPECT_EQ(img.width(), 4u);
  EXPECT_EQ(img.height(), 3u);
  EXPECT_EQ(img.at(0, 0), (viz::Rgb{9, 8, 7}));
  img.at(2, 1) = {1, 2, 3};
  EXPECT_EQ(img.at(2, 1), (viz::Rgb{1, 2, 3}));
}

TEST(Image, PpmFormat) {
  viz::Image img(2, 2);
  img.at(0, 0) = {255, 0, 0};
  img.at(1, 1) = {0, 0, 255};
  std::ostringstream out;
  img.write_ppm(out);
  const std::string data = out.str();
  EXPECT_EQ(data.substr(0, 3), "P6\n");
  EXPECT_NE(data.find("2 2\n255\n"), std::string::npos);
  // Header + 12 bytes of pixels.
  const std::size_t header = data.find("255\n") + 4;
  EXPECT_EQ(data.size() - header, 12u);
  EXPECT_EQ(static_cast<unsigned char>(data[header]), 255u);  // red pixel
}

TEST(Image, SaveToFile) {
  viz::Image img(8, 8, {1, 2, 3});
  const std::string path = ::testing::TempDir() + "/mpx_viz_test.ppm";
  img.save_ppm(path);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "P6");
}

TEST(Image, SaveToBadPathThrows) {
  viz::Image img(2, 2);
  EXPECT_THROW(img.save_ppm("/nonexistent/dir/x.ppm"), std::runtime_error);
}

TEST(GridRender, DimensionsAndClusterColors) {
  const vertex_t rows = 12;
  const vertex_t cols = 18;
  const CsrGraph g = generators::grid2d(rows, cols);
  PartitionOptions opt;
  opt.beta = 0.3;
  opt.seed = 5;
  const Decomposition dec = partition(g, opt);
  const viz::Image img = viz::render_grid_decomposition(dec, rows, cols);
  EXPECT_EQ(img.width(), cols);
  EXPECT_EQ(img.height(), rows);
  // Every pixel carries its vertex's cluster color.
  for (vertex_t r = 0; r < rows; ++r) {
    for (vertex_t c = 0; c < cols; ++c) {
      EXPECT_EQ(img.at(c, r),
                viz::category_color(dec.cluster_of(r * cols + c)));
    }
  }
}

}  // namespace
}  // namespace mpx
