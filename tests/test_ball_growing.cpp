// Tests for the sequential ball-growing baseline. Unlike the randomized
// MPX routine, ball growing gives deterministic guarantees: cut <= beta*m
// always, radius <= O(log m / beta) always.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/builder.hpp"
#include "baselines/ball_growing.hpp"
#include "core/metrics.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "tests/support/fixtures.hpp"
#include "tests/support/invariants.hpp"

namespace mpx {
namespace {

using namespace mpx::generators;
using mpx::testing::check_decomposition_invariants;

BallGrowingOptions opts(double beta, BallOrder order = BallOrder::kById,
                        std::uint64_t seed = 0) {
  BallGrowingOptions o;
  o.beta = beta;
  o.order = order;
  o.seed = seed;
  return o;
}

TEST(BallGrowing, ProducesValidDecompositions) {
  // canonical_graphs(): includes the multi-thousand-vertex shapes the old
  // hand-rolled list covered (path_2000, grid_40x50, rmat_10, ...).
  for (const auto& ng : mpx::testing::canonical_graphs()) {
    SCOPED_TRACE(ng.name);
    const Decomposition dec = ball_growing_decomposition(ng.graph, opts(0.2));
    EXPECT_TRUE(check_decomposition_invariants(dec, ng.graph));
  }
}

TEST(BallGrowing, DeterministicCutGuarantee) {
  // The charging argument gives cut <= beta * m unconditionally (each
  // piece's boundary is within beta of the volume it swallowed).
  const CsrGraph graphs[] = {grid2d(30, 30), erdos_renyi(500, 2000, 5),
                             hypercube(9), rmat(9, 4.0, 2)};
  for (const CsrGraph& g : graphs) {
    for (const double beta : {0.1, 0.3, 0.6}) {
      const Decomposition dec = ball_growing_decomposition(g, opts(beta));
      const DecompositionStats s = analyze(dec, g);
      EXPECT_LE(static_cast<double>(s.cut_edges),
                beta * (static_cast<double>(g.num_edges()) +
                        static_cast<double>(dec.num_clusters())))
          << "beta=" << beta;
    }
  }
}

TEST(BallGrowing, RadiusWithinLogBound) {
  const CsrGraph g = grid2d(40, 40);
  for (const double beta : {0.1, 0.3}) {
    const Decomposition dec = ball_growing_decomposition(g, opts(beta));
    const DecompositionStats s = analyze(dec, g);
    const double bound =
        std::log(static_cast<double>(g.num_edges()) + 1.0) /
            std::log(1.0 + beta) +
        1.0;
    EXPECT_LE(static_cast<double>(s.max_radius), bound) << "beta=" << beta;
  }
}

TEST(BallGrowing, CompleteGraphIsOneBall) {
  const CsrGraph g = complete(40);
  const Decomposition dec = ball_growing_decomposition(g, opts(0.1));
  EXPECT_EQ(dec.num_clusters(), 1u);
}

TEST(BallGrowing, RandomOrderIsSeedDeterministic) {
  const CsrGraph g = erdos_renyi(300, 900, 9);
  const Decomposition a =
      ball_growing_decomposition(g, opts(0.2, BallOrder::kRandom, 5));
  const Decomposition b =
      ball_growing_decomposition(g, opts(0.2, BallOrder::kRandom, 5));
  const Decomposition c =
      ball_growing_decomposition(g, opts(0.2, BallOrder::kRandom, 6));
  EXPECT_TRUE(std::equal(a.assignment().begin(), a.assignment().end(),
                         b.assignment().begin()));
  bool differs = false;
  for (vertex_t v = 0; v < g.num_vertices() && !differs; ++v) {
    differs = a.center(a.cluster_of(v)) != c.center(c.cluster_of(v));
  }
  EXPECT_TRUE(differs);
}

TEST(BallGrowing, HandlesDisconnectedGraphs) {
  const CsrGraph g = disjoint_copies(grid2d(8, 8), 3);
  const Decomposition dec = ball_growing_decomposition(g, opts(0.2));
  const VerifyResult vr = verify_decomposition(dec, g);
  EXPECT_TRUE(vr.ok) << vr.message;
}

TEST(BallGrowing, EdgelessGraphGivesSingletons) {
  const std::vector<Edge> none;
  const CsrGraph g = build_undirected(7, std::span<const Edge>(none));
  const Decomposition dec = ball_growing_decomposition(g, opts(0.5));
  EXPECT_EQ(dec.num_clusters(), 7u);
}

TEST(BallGrowing, LargerBetaMeansSmallerPieces) {
  const CsrGraph g = grid2d(30, 30);
  const Decomposition coarse = ball_growing_decomposition(g, opts(0.05));
  const Decomposition fine = ball_growing_decomposition(g, opts(0.6));
  EXPECT_LT(coarse.num_clusters(), fine.num_clusters());
}

}  // namespace
}  // namespace mpx
