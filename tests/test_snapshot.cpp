// Tests for the binary .mpxs snapshot format (src/graph/snapshot.*,
// specified in docs/FORMATS.md): corpus-wide round trips through both the
// owned (load_snapshot) and zero-copy (map_snapshot) readers, byte-exact
// writer stability, golden files pinning the on-disk bytes, the header
// layout stated by the spec, and corruption rejection (truncation, bad
// magic, future version, bad section offsets, payload flips).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/snapshot.hpp"
#include "tests/support/fixtures.hpp"
#include "tests/support/golden.hpp"
#include "tests/support/temp_dir.hpp"

namespace mpx {
namespace {

using mpx::testing::golden_path;
using mpx::testing::NamedGraph;
using mpx::testing::read_file_or_fail;
using mpx::testing::TempDir;

std::string read_file(const std::string& path) {
  return read_file_or_fail(path);
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void expect_same_graph(const CsrGraph& a, const CsrGraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_arcs(), b.num_arcs());
  EXPECT_TRUE(std::equal(a.offsets().begin(), a.offsets().end(),
                         b.offsets().begin()));
  EXPECT_TRUE(std::equal(a.targets().begin(), a.targets().end(),
                         b.targets().begin()));
}

/// The spec's checksum (FNV-1a 64) over the three section payloads, so
/// corruption tests can re-seal a deliberately broken payload and hit the
/// structural validators behind the checksum gate.
std::uint64_t spec_checksum(const std::string& file) {
  io::SnapshotHeader h{};
  std::memcpy(&h, file.data(), sizeof(h));
  std::uint64_t hash = 14695981039346656037ull;
  const auto mix = [&](std::uint64_t offset, std::uint64_t bytes) {
    for (std::uint64_t i = 0; i < bytes; ++i) {
      hash ^= static_cast<unsigned char>(file[offset + i]);
      hash *= 1099511628211ull;
    }
  };
  mix(h.offsets_offset, h.offsets_bytes);
  mix(h.targets_offset, h.targets_bytes);
  if (h.weights_bytes != 0) mix(h.weights_offset, h.weights_bytes);
  return hash;
}

void reseal_checksum(std::string& file) {
  const std::uint64_t checksum = spec_checksum(file);
  std::memcpy(file.data() + offsetof(io::SnapshotHeader, checksum), &checksum,
              sizeof(checksum));
}

TEST(Snapshot, RoundTripOwnedAcrossCorpus) {
  TempDir tmp("snapshot");
  for (const NamedGraph& ng : mpx::testing::small_graphs()) {
    SCOPED_TRACE(ng.name);
    const std::string path = tmp.file(ng.name + ".mpxs");
    io::save_snapshot(path, ng.graph);
    expect_same_graph(io::load_snapshot(path), ng.graph);
  }
}

TEST(Snapshot, RoundTripMappedAcrossCorpus) {
  TempDir tmp("snapshot");
  for (const NamedGraph& ng : mpx::testing::small_graphs()) {
    SCOPED_TRACE(ng.name);
    const std::string path = tmp.file(ng.name + ".mpxs");
    io::save_snapshot(path, ng.graph);
    const CsrGraph mapped = io::map_snapshot(path, /*verify_checksum=*/true);
    expect_same_graph(mapped, ng.graph);
  }
}

TEST(Snapshot, RoundTripDegenerateGraphs) {
  TempDir tmp("snapshot");
  for (const NamedGraph& ng : mpx::testing::degenerate_graphs()) {
    SCOPED_TRACE(ng.name);
    const std::string path = tmp.file(ng.name + ".mpxs");
    io::save_snapshot(path, ng.graph);
    expect_same_graph(io::load_snapshot(path), ng.graph);
    expect_same_graph(io::map_snapshot(path), ng.graph);
  }
}

TEST(Snapshot, RoundTripWeighted) {
  TempDir tmp("snapshot");
  const std::vector<WeightedEdge> edges = {
      {0, 1, 1.5}, {1, 2, 2.25}, {0, 3, 0.125}};
  const WeightedCsrGraph g =
      build_undirected_weighted(4, std::span<const WeightedEdge>(edges));
  const std::string path = tmp.file("weighted.mpxs");
  io::save_snapshot(path, g);

  const WeightedCsrGraph loaded = io::load_weighted_snapshot(path);
  expect_same_graph(loaded.topology(), g.topology());
  ASSERT_EQ(loaded.num_arcs(), g.num_arcs());
  EXPECT_TRUE(std::equal(loaded.weights().begin(), loaded.weights().end(),
                         g.weights().begin()));

  const WeightedCsrGraph mapped =
      io::map_weighted_snapshot(path, /*verify_checksum=*/true);
  expect_same_graph(mapped.topology(), g.topology());
  EXPECT_TRUE(std::equal(mapped.weights().begin(), mapped.weights().end(),
                         g.weights().begin()));
}

TEST(Snapshot, EdgelessWeightedGraphStaysWeighted) {
  // The weighted flag is explicit, not inferred from a non-empty weights
  // span, so weightedness survives the round trip even with m == 0.
  TempDir tmp("snapshot");
  for (const auto& [name, wg] :
       {std::pair<std::string, WeightedCsrGraph>{"empty",
                                                 WeightedCsrGraph{}},
        {"isolated", WeightedCsrGraph(build_undirected(3, {}), {})}}) {
    SCOPED_TRACE(name);
    const std::string path = tmp.file(name + ".mpxs");
    io::save_snapshot(path, wg);
    EXPECT_EQ(io::detect_graph_format(path),
              io::GraphFileFormat::kWeightedSnapshot);
    const WeightedCsrGraph loaded = io::load_weighted_snapshot(path);
    EXPECT_EQ(loaded.num_vertices(), wg.num_vertices());
    EXPECT_EQ(loaded.num_arcs(), 0u);
    const WeightedCsrGraph mapped = io::map_weighted_snapshot(path);
    EXPECT_EQ(mapped.num_vertices(), wg.num_vertices());
    EXPECT_THROW((void)io::load_snapshot(path), std::runtime_error);
  }
}

TEST(Snapshot, WriterIsByteStable) {
  // Same graph, two writes -> identical bytes; and save(load(save)) is
  // byte-identical, so the binary form is canonical like the text form.
  TempDir tmp("snapshot");
  const CsrGraph g = generators::grid2d(5, 4);
  const std::string a = tmp.file("a.mpxs");
  const std::string b = tmp.file("b.mpxs");
  io::save_snapshot(a, g);
  io::save_snapshot(b, g);
  EXPECT_EQ(read_file(a), read_file(b));
  const std::string c = tmp.file("c.mpxs");
  io::save_snapshot(c, io::load_snapshot(a));
  EXPECT_EQ(read_file(a), read_file(c));
}

TEST(Snapshot, MappedGraphIsZeroCopyView) {
  TempDir tmp("snapshot");
  const CsrGraph g = generators::grid2d(4, 4);
  const std::string path = tmp.file("view.mpxs");
  io::save_snapshot(path, g);

  const CsrGraph mapped = io::map_snapshot(path);
  EXPECT_FALSE(mapped.owns_storage());
  EXPECT_TRUE(io::load_snapshot(path).owns_storage());
  EXPECT_TRUE(g.owns_storage());

  // Copies of a view share the mapping and alias the same bytes.
  const CsrGraph copy = mapped;  // NOLINT(performance-unnecessary-copy)
  EXPECT_FALSE(copy.owns_storage());
  EXPECT_EQ(copy.targets().data(), mapped.targets().data());

  // Copying an owning graph stays a deep copy.
  const CsrGraph deep = g;  // NOLINT(performance-unnecessary-copy)
  EXPECT_TRUE(deep.owns_storage());
  EXPECT_NE(deep.targets().data(), g.targets().data());
}

TEST(Snapshot, MappedGraphOutlivesMoveAndCopyChains) {
  // The mapping keepalive must survive arbitrary move/copy shuffles.
  TempDir tmp("snapshot");
  const CsrGraph g = generators::rmat(8, 4.0, 3);
  const std::string path = tmp.file("chain.mpxs");
  io::save_snapshot(path, g);

  CsrGraph survivor;
  {
    CsrGraph mapped = io::map_snapshot(path);
    CsrGraph moved = std::move(mapped);
    const CsrGraph copied = moved;
    survivor = copied;
  }
  expect_same_graph(survivor, g);
}

TEST(Snapshot, HeaderLayoutMatchesSpec) {
  // docs/FORMATS.md "Header layout" states these byte offsets; the
  // static_asserts in graph/snapshot.hpp pin the struct, this test pins
  // the actual file bytes.
  TempDir tmp("snapshot");
  const CsrGraph g = generators::path(4);  // the spec's worked example
  const std::string path = tmp.file("p4.mpxs");
  io::save_snapshot(path, g);
  const std::string file = read_file(path);
  ASSERT_GE(file.size(), io::kSnapshotHeaderBytes);

  EXPECT_EQ(std::memcmp(file.data(), "MPXSNAP\0", 8), 0);
  std::uint32_t version = 0;
  std::memcpy(&version, file.data() + 8, 4);
  EXPECT_EQ(version, io::kSnapshotVersion);
  std::uint32_t flags = 0;
  std::memcpy(&flags, file.data() + 12, 4);
  EXPECT_EQ(flags, io::kSnapshotFlagUndirected);
  std::uint64_t n = 0;
  std::memcpy(&n, file.data() + 16, 8);
  EXPECT_EQ(n, 4u);
  std::uint64_t arcs = 0;
  std::memcpy(&arcs, file.data() + 24, 8);
  EXPECT_EQ(arcs, 6u);
  std::uint64_t offsets_offset = 0;
  std::memcpy(&offsets_offset, file.data() + 32, 8);
  EXPECT_EQ(offsets_offset, 128u);
  std::uint64_t offsets_bytes = 0;
  std::memcpy(&offsets_bytes, file.data() + 40, 8);
  EXPECT_EQ(offsets_bytes, (4u + 1) * 8);
  std::uint64_t targets_offset = 0;
  std::memcpy(&targets_offset, file.data() + 48, 8);
  EXPECT_EQ(targets_offset, 192u);  // align64(128 + 40)
  // Sections are 64-byte aligned and the file ends on an aligned boundary.
  EXPECT_EQ(file.size() % io::kSnapshotSectionAlign, 0u);
  EXPECT_EQ(spec_checksum(file),
            [&] {
              std::uint64_t checksum = 0;
              std::memcpy(&checksum, file.data() + 80, 8);
              return checksum;
            }());
}

TEST(Snapshot, GoldenFileMatchesWriter) {
  // Pins the on-disk binary format. If this fails because the format
  // deliberately changed, bump the version, update docs/FORMATS.md, and
  // regenerate with: build/regen_golden (see tests/golden/).
  const CsrGraph g = generators::grid2d(3, 3);
  TempDir tmp("snapshot");
  const std::string path = tmp.file("grid_3x3.mpxs");
  io::save_snapshot(path, g);
  EXPECT_EQ(read_file(path), read_file_or_fail(golden_path("grid_3x3.mpxs")));
}

TEST(Snapshot, GoldenFileParsesBackToSameGraph) {
  const CsrGraph g = generators::grid2d(3, 3);
  expect_same_graph(io::load_snapshot(golden_path("grid_3x3.mpxs")), g);
  expect_same_graph(io::map_snapshot(golden_path("grid_3x3.mpxs")), g);
}

TEST(Snapshot, WeightedGoldenFileMatchesWriter) {
  const WeightedCsrGraph g = mpx::testing::grid3x3_weighted_reference();
  TempDir tmp("snapshot");
  const std::string path = tmp.file("grid_3x3_weighted.mpxs");
  io::save_snapshot(path, g);
  EXPECT_EQ(read_file(path),
            read_file_or_fail(golden_path("grid_3x3_weighted.mpxs")));
  const WeightedCsrGraph back =
      io::load_weighted_snapshot(golden_path("grid_3x3_weighted.mpxs"));
  expect_same_graph(back.topology(), g.topology());
  EXPECT_TRUE(std::equal(back.weights().begin(), back.weights().end(),
                         g.weights().begin()));
}

TEST(Snapshot, InfoReportsHeaderFields) {
  TempDir tmp("snapshot");
  const CsrGraph g = generators::grid2d(3, 3);
  const std::string path = tmp.file("info.mpxs");
  io::save_snapshot(path, g);
  const io::SnapshotInfo info = io::read_snapshot_info(path);
  EXPECT_EQ(info.version, io::kSnapshotVersion);
  EXPECT_EQ(info.num_vertices, 9u);
  EXPECT_EQ(info.num_arcs, g.num_arcs());
  EXPECT_FALSE(info.weighted());
  EXPECT_EQ(info.file_bytes, read_file(path).size());
}

TEST(Snapshot, VerifyAcceptsHealthyFiles) {
  TempDir tmp("snapshot");
  const CsrGraph g = generators::rmat(8, 4.0, 1);
  const std::string path = tmp.file("ok.mpxs");
  io::save_snapshot(path, g);
  EXPECT_NO_THROW((void)io::verify_snapshot(path));
}

// ---------------------------------------------------------------------------
// Corruption rejection: every reader must throw std::runtime_error, never
// crash, on the failure classes the spec enumerates.
// ---------------------------------------------------------------------------

class SnapshotCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    const CsrGraph g = generators::grid2d(3, 3);
    path_ = tmp_.file("corrupt.mpxs");
    io::save_snapshot(path_, g);
    good_ = read_file(path_);
  }

  /// Writes `bytes` to the test path and expects every reader to reject it.
  void expect_rejected(const std::string& bytes, const char* why) {
    SCOPED_TRACE(why);
    write_file(path_, bytes);
    EXPECT_THROW((void)io::load_snapshot(path_), std::runtime_error);
    EXPECT_THROW((void)io::map_snapshot(path_), std::runtime_error);
    EXPECT_THROW((void)io::verify_snapshot(path_), std::runtime_error);
  }

  TempDir tmp_{"snapshot-corrupt"};
  std::string path_;
  std::string good_;
};

TEST_F(SnapshotCorruption, RejectsTruncation) {
  // Every truncation point: inside the header, at the header boundary,
  // inside each section.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{8}, std::size_t{64}, std::size_t{127},
        std::size_t{128}, std::size_t{150}, good_.size() - 64,
        good_.size() - 1}) {
    expect_rejected(good_.substr(0, keep),
                    ("truncated to " + std::to_string(keep)).c_str());
  }
}

TEST_F(SnapshotCorruption, RejectsBadMagic) {
  std::string bad = good_;
  bad[0] = 'X';
  expect_rejected(bad, "first magic byte flipped");
}

TEST_F(SnapshotCorruption, RejectsFutureVersion) {
  std::string bad = good_;
  bad[8] = 3;  // version field, docs/FORMATS.md offset 8; 2 now exists
  expect_rejected(bad, "version 3");
}

TEST_F(SnapshotCorruption, RejectsVersionOneBytesRelabeledAsTwo) {
  // A v1 body whose version field claims 2 must fail the v2 header
  // validation (checksummed 192-byte header), not get misparsed.
  std::string bad = good_;
  bad[8] = 2;
  expect_rejected(bad, "v1 bytes relabeled version 2");
}

TEST_F(SnapshotCorruption, RejectsUnknownFlags) {
  std::string bad = good_;
  bad[12] = static_cast<char>(bad[12] | 0x80);
  expect_rejected(bad, "unknown flag bit");
}

TEST_F(SnapshotCorruption, RejectsMissingUndirectedFlag) {
  std::string bad = good_;
  bad[12] = 0;  // clears kSnapshotFlagUndirected
  expect_rejected(bad, "undirected flag cleared");
}

TEST_F(SnapshotCorruption, RejectsNonzeroReservedBytes) {
  std::string bad = good_;
  bad[100] = 1;  // inside reserved[40] at offset 88
  expect_rejected(bad, "reserved byte set");
}

TEST_F(SnapshotCorruption, RejectsMisalignedSectionOffset) {
  std::string bad = good_;
  std::uint64_t off = 0;
  std::memcpy(&off, bad.data() + 48, 8);  // targets_offset
  off += 4;                               // still in bounds, not 64-aligned
  std::memcpy(bad.data() + 48, &off, 8);
  expect_rejected(bad, "targets offset misaligned");
}

TEST_F(SnapshotCorruption, RejectsOutOfBoundsSectionOffset) {
  std::string bad = good_;
  const std::uint64_t off = 1u << 20;  // way past EOF, but 64-aligned
  std::memcpy(bad.data() + 32, &off, 8);  // offsets_offset
  expect_rejected(bad, "offsets section out of bounds");
}

TEST_F(SnapshotCorruption, RejectsSectionOverlappingHeader) {
  std::string bad = good_;
  const std::uint64_t off = 64;  // aligned but inside the 128-byte header
  std::memcpy(bad.data() + 32, &off, 8);
  reseal_checksum(bad);  // keep the checksum gate from masking the check
  expect_rejected(bad, "offsets section overlaps header");
}

TEST_F(SnapshotCorruption, RejectsAliasedSections) {
  // Overlapping sections (targets aliasing offsets) violate the canonical
  // offset formulas even with a resealed checksum.
  std::string bad = good_;
  std::uint64_t off = 0;
  std::memcpy(&off, bad.data() + 32, 8);  // offsets_offset (aligned)
  std::memcpy(bad.data() + 48, &off, 8);  // targets_offset := offsets_offset
  reseal_checksum(bad);
  expect_rejected(bad, "targets section aliases the offsets section");
}

TEST_F(SnapshotCorruption, RejectsInconsistentSectionSize) {
  std::string bad = good_;
  std::uint64_t bytes = 0;
  std::memcpy(&bytes, bad.data() + 40, 8);  // offsets_bytes
  bytes -= 8;
  std::memcpy(bad.data() + 40, &bytes, 8);
  expect_rejected(bad, "offsets_bytes disagrees with num_vertices");
}

TEST_F(SnapshotCorruption, RejectsPayloadFlip) {
  std::string bad = good_;
  bad[bad.size() - 64] = static_cast<char>(bad[bad.size() - 64] ^ 0x01);
  write_file(path_, bad);
  // Checksummed paths reject it...
  EXPECT_THROW((void)io::load_snapshot(path_), std::runtime_error);
  EXPECT_THROW((void)io::verify_snapshot(path_), std::runtime_error);
  EXPECT_THROW((void)io::map_snapshot(path_, /*verify_checksum=*/true),
               std::runtime_error);
}

TEST_F(SnapshotCorruption, RejectsStructurallyInvalidPayload) {
  // An in-bounds but non-CSR payload: make offsets[1] > offsets[n] and
  // re-seal the checksum, so only the structural validator can catch it.
  std::string bad = good_;
  std::uint64_t off = 0;
  std::memcpy(&off, bad.data() + 32, 8);  // offsets section start
  const std::uint64_t huge = good_.size();  // > num_arcs, breaks monotonicity
  std::memcpy(bad.data() + off + 8, &huge, 8);
  reseal_checksum(bad);
  expect_rejected(bad, "non-monotone offsets behind a valid checksum");
}

TEST_F(SnapshotCorruption, RejectsOutOfRangeTargetBehindValidChecksum) {
  std::string bad = good_;
  io::SnapshotHeader h{};
  std::memcpy(&h, bad.data(), sizeof(h));
  const std::uint32_t out_of_range = 0x7FFFFFFF;
  std::memcpy(bad.data() + h.targets_offset, &out_of_range, 4);
  reseal_checksum(bad);
  expect_rejected(bad, "arc target >= n behind a valid checksum");
}

TEST_F(SnapshotCorruption, RejectsWeightednessMismatch) {
  write_file(path_, good_);  // healthy unweighted file
  EXPECT_THROW((void)io::load_weighted_snapshot(path_), std::runtime_error);
  EXPECT_THROW((void)io::map_weighted_snapshot(path_), std::runtime_error);

  const WeightedCsrGraph wg = mpx::testing::grid3x3_weighted_reference();
  io::save_snapshot(path_, wg);
  EXPECT_THROW((void)io::load_snapshot(path_), std::runtime_error);
  EXPECT_THROW((void)io::map_snapshot(path_), std::runtime_error);
}

TEST_F(SnapshotCorruption, RejectsNonPositiveWeightBehindValidChecksum) {
  const WeightedCsrGraph wg = mpx::testing::grid3x3_weighted_reference();
  io::save_snapshot(path_, wg);
  std::string bad = read_file(path_);
  io::SnapshotHeader h{};
  std::memcpy(&h, bad.data(), sizeof(h));
  const double negative = -1.0;
  std::memcpy(bad.data() + h.weights_offset, &negative, 8);
  reseal_checksum(bad);
  write_file(path_, bad);
  EXPECT_THROW((void)io::load_weighted_snapshot(path_), std::runtime_error);
  EXPECT_THROW((void)io::map_weighted_snapshot(path_), std::runtime_error);
}

}  // namespace
}  // namespace mpx
