// Golden-file helpers shared by the I/O suites.
//
// Golden files live in tests/golden/ in the source tree (located at compile
// time via MPX_TEST_GOLDEN_DIR) and pin the on-disk text formats; after a
// deliberate format change regenerate them with the regen_golden target.
#pragma once

#include <string>

#include "core/decomposition.hpp"
#include "graph/csr_graph.hpp"

namespace mpx::testing {

/// Absolute path of `name` inside tests/golden/.
[[nodiscard]] std::string golden_path(const std::string& name);

/// Whole-file read (binary). Throws std::runtime_error with the path when
/// the file cannot be opened, so a missing golden fails loudly instead of
/// diffing against an empty string.
[[nodiscard]] std::string read_file_or_fail(const std::string& path);

/// In-memory serializations via the library writers.
[[nodiscard]] std::string serialize_edge_list(const CsrGraph& g);
[[nodiscard]] std::string serialize_decomposition(const Decomposition& dec);

}  // namespace mpx::testing
