#include "tests/support/temp_dir.hpp"

#include <atomic>
#include <system_error>

#if defined(_WIN32)
#include <process.h>
#define MPX_GETPID _getpid
#else
#include <unistd.h>
#define MPX_GETPID getpid
#endif

namespace mpx::testing {

namespace {
std::atomic<unsigned> g_counter{0};
}  // namespace

TempDir::TempDir(const std::string& tag) {
  const unsigned id = g_counter.fetch_add(1, std::memory_order_relaxed);
  path_ = std::filesystem::temp_directory_path() /
          ("mpx-test-" + tag + "-p" + std::to_string(MPX_GETPID()) + "-" +
           std::to_string(id));
  std::filesystem::create_directories(path_);
}

TempDir::~TempDir() {
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);
}

}  // namespace mpx::testing
