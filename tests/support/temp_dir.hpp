// Scoped temporary directory for I/O tests.
//
// Each TempDir creates a unique directory under the system temp root and
// removes it (recursively) on destruction, so golden-file and round-trip
// tests never leak state between runs or between concurrently running
// ctest jobs.
#pragma once

#include <filesystem>
#include <string>

namespace mpx::testing {

class TempDir {
 public:
  /// Create `<system-tmp>/mpx-test-<unique>`. `tag` is embedded in the
  /// name to make stray leftovers attributable to a suite.
  explicit TempDir(const std::string& tag = "scratch");

  /// Best-effort recursive removal; errors are swallowed (a vanished tmp
  /// root must not fail the suite that already passed).
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

  /// Absolute path of `name` inside the directory, as a string for the
  /// io::save_* / io::load_* APIs.
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

}  // namespace mpx::testing
