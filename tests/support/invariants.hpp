// Decomposition invariant checking for tests.
//
// check_decomposition_invariants() is the one assertion every suite that
// produces a decomposition should run. It layers, on top of the library's
// own structural verifier (partition coverage, in-piece connectivity,
// Lemma 4.1 distances), the quality facts of Definition 1.1:
//   * coverage: every vertex in exactly one piece, piece ids compact,
//   * strong radius: max dist-to-center <= radius_slack * ln(n) / beta,
//   * cut fraction: cut edges / m <= cut_slack * beta.
// The quality bounds hold in expectation / w.h.p. in the paper, so the
// slack factors default generously; tests that average over seeds can
// tighten them.
#pragma once

#include <gtest/gtest.h>

#include "core/decomposition.hpp"
#include "core/shifts.hpp"
#include "core/weighted_partition.hpp"
#include "graph/csr_graph.hpp"

namespace mpx::testing {

struct InvariantOptions {
  /// When > 0, enables the beta-dependent quality checks below.
  double beta = 0.0;
  /// Radius bound: max_radius <= radius_slack * ln(max(n, 2)) / beta.
  /// Theorem 1.2 gives O(log n / beta) w.h.p.; 6x absorbs the constant.
  double radius_slack = 6.0;
  /// Cut bound: cut_fraction <= cut_slack * beta. The paper bounds the
  /// expectation by beta; 0 disables (single-seed runs on tiny graphs can
  /// legitimately exceed any constant multiple).
  double cut_slack = 0.0;
  /// When set, additionally check radius(v) <= delta[center] + 1
  /// (Lemma 4.2) via the library verifier.
  const Shifts* shifts = nullptr;
};

/// Returns success iff every enabled invariant holds; the failure message
/// names the first violated invariant. Use as
///   EXPECT_TRUE(check_decomposition_invariants(dec, g, {.beta = 0.2}));
[[nodiscard]] ::testing::AssertionResult check_decomposition_invariants(
    const Decomposition& dec, const CsrGraph& g,
    const InvariantOptions& opt = {});

struct WeightedInvariantOptions {
  /// When > 0, enables the beta-dependent quality checks below.
  double beta = 0.0;
  /// Radius bound: max weighted radius <= radius_slack * ln(max(n, 2)) /
  /// beta. Shift values are drawn in weighted-distance units, so the bound
  /// is weight-free, exactly as in the unweighted case.
  double radius_slack = 6.0;
  /// Cut bound: cut_edges <= cut_slack * beta * total_weight (the weighted
  /// Corollary 4.5: P[e cut] <= beta * w(e)). 0 disables.
  double cut_slack = 0.0;
  /// When set, additionally check dist_to_center(v) <= delta[center] + eps
  /// (the continuous Lemma 4.2 analogue — no floor slack in the Dijkstra
  /// formulation).
  const Shifts* shifts = nullptr;
  /// Relative tolerance for floating-point distance comparisons.
  double eps = 1e-6;
};

/// Weighted analogue of check_decomposition_invariants for
/// WeightedDecomposition:
///   * coverage: every vertex in exactly one piece, centers anchor their
///     own piece at distance 0, center list strictly increasing,
///   * connectivity + exact distances: every non-center has an in-piece
///     predecessor realizing dist[v] == dist[u] + w(u,v), and no in-piece
///     arc can shorten any recorded distance (feasibility + realizability
///     pin dist as the true in-piece shortest-path distance, without
///     running Dijkstra),
///   * the optional shift / quality bounds above.
[[nodiscard]] ::testing::AssertionResult
check_weighted_decomposition_invariants(
    const WeightedDecomposition& dec, const WeightedCsrGraph& g,
    const WeightedInvariantOptions& opt = {});

}  // namespace mpx::testing
