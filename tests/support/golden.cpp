#include "tests/support/golden.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/decomposition_io.hpp"
#include "graph/io.hpp"

namespace mpx::testing {

std::string golden_path(const std::string& name) {
  return std::string(MPX_TEST_GOLDEN_DIR) + "/" + name;
}

std::string read_file_or_fail(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    throw std::runtime_error("cannot open golden file: " + path);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string serialize_edge_list(const CsrGraph& g) {
  std::stringstream buffer;
  io::write_edge_list(buffer, g);
  return buffer.str();
}

std::string serialize_decomposition(const Decomposition& dec) {
  std::stringstream buffer;
  io::write_decomposition(buffer, dec);
  return buffer.str();
}

}  // namespace mpx::testing
