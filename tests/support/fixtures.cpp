#include "tests/support/fixtures.hpp"

#include <utility>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace mpx::testing {

std::vector<NamedGraph> degenerate_graphs() {
  std::vector<NamedGraph> out;
  out.push_back({"empty", CsrGraph{}});
  out.push_back({"single_vertex", build_undirected(1, {})});
  out.push_back({"two_isolated", build_undirected(2, {})});
  const Edge one_edge[] = {{0, 1}};
  out.push_back({"one_edge", build_undirected(2, one_edge)});
  return out;
}

std::vector<NamedGraph> small_graphs() {
  namespace gen = mpx::generators;
  std::vector<NamedGraph> out = degenerate_graphs();
  out.push_back({"path_64", gen::path(64)});
  out.push_back({"cycle_48", gen::cycle(48)});
  out.push_back({"complete_16", gen::complete(16)});
  out.push_back({"star_33", gen::star(33)});
  out.push_back({"grid_8x9", gen::grid2d(8, 9)});
  out.push_back({"torus_6x6", gen::grid2d(6, 6, /*wrap=*/true)});
  out.push_back({"grid3d_4x4x3", gen::grid3d(4, 4, 3)});
  out.push_back({"binary_tree_31", gen::complete_binary_tree(31)});
  out.push_back({"hypercube_5", gen::hypercube(5)});
  out.push_back({"barbell_8", gen::barbell(8)});
  out.push_back({"caterpillar_10x3", gen::caterpillar(10, 3)});
  out.push_back({"erdos_renyi_60_120", gen::erdos_renyi(60, 120, 7)});
  out.push_back(
      {"three_triangles", gen::disjoint_copies(gen::cycle(3), 3)});
  return out;
}

std::vector<NamedGraph> canonical_graphs() {
  namespace gen = mpx::generators;
  std::vector<NamedGraph> out = small_graphs();
  out.push_back({"path_2000", gen::path(2000)});
  out.push_back({"grid_40x50", gen::grid2d(40, 50)});
  out.push_back({"rmat_10", gen::rmat(10, 4.0, 11)});
  out.push_back({"matching_union_512_deg4",
                 gen::random_matching_union(512, 4, 13)});
  out.push_back({"watts_strogatz_600", gen::watts_strogatz(600, 6, 0.1, 17)});
  out.push_back({"disconnected_grids",
                 gen::disjoint_copies(gen::grid2d(12, 12), 4)});
  return out;
}

WeightedCsrGraph grid3x3_weighted_reference() {
  const CsrGraph grid = mpx::generators::grid2d(3, 3);
  std::vector<WeightedEdge> edges;
  for (const Edge& e : edge_list(grid)) {
    // Multiples of 0.25 are exact in binary64, so the bytes the writers
    // emit are identical on every IEEE 754 platform.
    edges.push_back({e.u, e.v, 1.0 + 0.25 * ((e.u + 2 * e.v) % 5)});
  }
  return build_undirected_weighted(grid.num_vertices(),
                                   std::span<const WeightedEdge>(edges));
}

Decomposition grid3x3_reference_decomposition() {
  // Grid ids:  0 1 2     Piece A (center 0): {0, 1, 2} along the top row.
  //            3 4 5     Piece B (center 4): the remaining six vertices.
  //            6 7 8     All recorded distances are true in-piece distances.
  const std::vector<vertex_t> owner = {0, 0, 0, 4, 4, 4, 4, 4, 4};
  const std::vector<std::uint32_t> dist = {0, 1, 2, 1, 0, 1, 2, 1, 2};
  return Decomposition(owner, dist);
}

RunTelemetry reference_telemetry() {
  RunTelemetry t;
  t.algorithm = "mpx";
  t.engine = "auto";
  t.threads = 8;
  t.rounds = 6;
  t.pull_rounds = 2;
  t.phases = 1;
  t.arcs_scanned = 48;
  t.shift_seconds = 0.25;
  t.shift_draw_seconds = 0.1875;
  t.shift_rank_seconds = 0.0625;
  t.search_seconds = 0.5;
  t.assemble_seconds = 0.125;
  t.total_seconds = 0.875;
  return t;
}

}  // namespace mpx::testing
