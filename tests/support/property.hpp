// Seeded randomized-property harness.
//
// Every randomized test in the repo draws its seeds from one deterministic
// corpus so a ctest run is bitwise reproducible: there is no time(), no
// std::random_device, and a failure message always names the seed that
// produced it. Override the corpus ad hoc with MPX_TEST_SEED=<n> in the
// environment to replay a single seed.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "support/random.hpp"

namespace mpx::testing {

/// Master seed of the shared corpus. Changing it re-rolls every
/// randomized test in the repo at once — bump deliberately.
inline constexpr std::uint64_t kCorpusMasterSeed = 0xC0FFEE20260729ULL;

/// The `count` deterministic seeds derived from `master`. seed_corpus(k)
/// is a prefix of seed_corpus(k + 1), so raising a test's count only adds
/// cases.
[[nodiscard]] std::vector<std::uint64_t> seed_corpus(
    std::size_t count, std::uint64_t master = kCorpusMasterSeed);

/// MPX_TEST_SEED replay hook used by for_each_seed; exposed for tests that
/// iterate seeds manually. Returns {MPX_TEST_SEED} when the variable is
/// set, `corpus` unchanged otherwise.
[[nodiscard]] std::vector<std::uint64_t> replay_or(
    std::vector<std::uint64_t> corpus);

/// Run `fn(seed)` for each corpus seed, wrapping each call in a
/// SCOPED_TRACE naming the seed. If MPX_TEST_SEED is set in the
/// environment, runs only that seed (replay mode).
template <typename Fn>
void for_each_seed(std::size_t count, Fn&& fn) {
  for (const std::uint64_t seed : replay_or(seed_corpus(count))) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    fn(seed);
  }
}

/// Random sparse graph: n in [1, max_n], about `avg_degree * n / 2` edges,
/// built through the canonical builder (dedup, no self-loops). Shape is a
/// pure function of the rng state.
[[nodiscard]] CsrGraph random_graph(Xoshiro256pp& rng, vertex_t max_n,
                                    double avg_degree = 4.0);

/// Random connected graph: random_graph plus a random spanning arborescence
/// over all vertices, so BFS/decomposition tests see one component.
[[nodiscard]] CsrGraph random_connected_graph(Xoshiro256pp& rng,
                                              vertex_t max_n,
                                              double avg_degree = 4.0);

}  // namespace mpx::testing
