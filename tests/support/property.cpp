#include "tests/support/property.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "graph/builder.hpp"

namespace mpx::testing {

std::vector<std::uint64_t> seed_corpus(std::size_t count,
                                       std::uint64_t master) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    seeds.push_back(hash_stream(master, i));
  }
  return seeds;
}

std::vector<std::uint64_t> replay_or(std::vector<std::uint64_t> corpus) {
  const char* replay = std::getenv("MPX_TEST_SEED");
  if (replay == nullptr || *replay == '\0') return corpus;
  // Strict parse (base 0: decimal or 0x-hex). This can run during static
  // initialization (INSTANTIATE_TEST_SUITE_P), so report bad input plainly
  // instead of throwing into a context with no test to fail.
  errno = 0;
  char* end = nullptr;
  const std::uint64_t seed = std::strtoull(replay, &end, 0);
  if (errno != 0 || end == replay || *end != '\0') {
    std::fprintf(stderr, "MPX_TEST_SEED='%s' is not a valid seed "
                 "(expected a decimal or 0x-prefixed integer)\n", replay);
    std::exit(2);
  }
  return {seed};
}

CsrGraph random_graph(Xoshiro256pp& rng, vertex_t max_n, double avg_degree) {
  const vertex_t n =
      1 + static_cast<vertex_t>(rng.next_below(std::max<vertex_t>(max_n, 1)));
  const edge_t want =
      static_cast<edge_t>(avg_degree * static_cast<double>(n) / 2.0);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(want));
  for (edge_t e = 0; e < want; ++e) {
    const auto u = static_cast<vertex_t>(rng.next_below(n));
    const auto v = static_cast<vertex_t>(rng.next_below(n));
    edges.push_back({u, v});  // builder drops self-loops and duplicates
  }
  return build_undirected(n, edges);
}

CsrGraph random_connected_graph(Xoshiro256pp& rng, vertex_t max_n,
                                double avg_degree) {
  const vertex_t n =
      1 + static_cast<vertex_t>(rng.next_below(std::max<vertex_t>(max_n, 1)));
  std::vector<Edge> edges;
  // Random arborescence: each vertex v > 0 attaches to a uniform earlier
  // vertex, which connects the graph by construction.
  for (vertex_t v = 1; v < n; ++v) {
    edges.push_back({static_cast<vertex_t>(rng.next_below(v)), v});
  }
  const edge_t extra =
      static_cast<edge_t>(avg_degree * static_cast<double>(n) / 2.0);
  for (edge_t e = 0; e < extra; ++e) {
    const auto u = static_cast<vertex_t>(rng.next_below(n));
    const auto v = static_cast<vertex_t>(rng.next_below(n));
    edges.push_back({u, v});
  }
  return build_undirected(n, edges);
}

}  // namespace mpx::testing
