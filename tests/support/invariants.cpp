#include "tests/support/invariants.hpp"

#include <algorithm>
#include <cmath>

#include "core/metrics.hpp"
#include "core/verify.hpp"

namespace mpx::testing {

::testing::AssertionResult check_decomposition_invariants(
    const Decomposition& dec, const CsrGraph& g, const InvariantOptions& opt) {
  // Structural facts: vertex-count match, partition coverage with compact
  // ids, centers anchor their own piece, in-piece connectivity, Lemma 4.1
  // distances (+ Lemma 4.2 with shifts). All delegated to the library
  // verifier, which tests elsewhere prove rejects corrupted decompositions.
  const VerifyResult vr = opt.shifts != nullptr
                              ? verify_decomposition(dec, g, *opt.shifts)
                              : verify_decomposition(dec, g);
  if (!vr.ok) {
    return ::testing::AssertionFailure() << "verifier: " << vr.message;
  }

  if (opt.beta > 0.0 && g.num_vertices() > 0) {
    const DecompositionStats stats = analyze(dec, g);
    const double n = std::max<double>(g.num_vertices(), 2.0);
    const double radius_bound = opt.radius_slack * std::log(n) / opt.beta;
    if (static_cast<double>(stats.max_radius) > radius_bound) {
      return ::testing::AssertionFailure()
             << "max radius " << stats.max_radius << " exceeds "
             << opt.radius_slack << " * ln(n)/beta = " << radius_bound
             << " (beta=" << opt.beta << ", n=" << g.num_vertices() << ")";
    }
    if (opt.cut_slack > 0.0 && g.num_edges() > 0) {
      const double cut_bound = opt.cut_slack * opt.beta;
      if (stats.cut_fraction > cut_bound) {
        return ::testing::AssertionFailure()
               << "cut fraction " << stats.cut_fraction << " exceeds "
               << opt.cut_slack << " * beta = " << cut_bound;
      }
    }
  }

  return ::testing::AssertionSuccess();
}

}  // namespace mpx::testing
