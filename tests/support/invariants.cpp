#include "tests/support/invariants.hpp"

#include <algorithm>
#include <cmath>

#include "core/metrics.hpp"
#include "core/verify.hpp"

namespace mpx::testing {

::testing::AssertionResult check_decomposition_invariants(
    const Decomposition& dec, const CsrGraph& g, const InvariantOptions& opt) {
  // Structural facts: vertex-count match, partition coverage with compact
  // ids, centers anchor their own piece, in-piece connectivity, Lemma 4.1
  // distances (+ Lemma 4.2 with shifts). All delegated to the library
  // verifier, which tests elsewhere prove rejects corrupted decompositions.
  const VerifyResult vr = opt.shifts != nullptr
                              ? verify_decomposition(dec, g, *opt.shifts)
                              : verify_decomposition(dec, g);
  if (!vr.ok) {
    return ::testing::AssertionFailure() << "verifier: " << vr.message;
  }

  if (opt.beta > 0.0 && g.num_vertices() > 0) {
    const DecompositionStats stats = analyze(dec, g);
    const double n = std::max<double>(g.num_vertices(), 2.0);
    const double radius_bound = opt.radius_slack * std::log(n) / opt.beta;
    if (static_cast<double>(stats.max_radius) > radius_bound) {
      return ::testing::AssertionFailure()
             << "max radius " << stats.max_radius << " exceeds "
             << opt.radius_slack << " * ln(n)/beta = " << radius_bound
             << " (beta=" << opt.beta << ", n=" << g.num_vertices() << ")";
    }
    if (opt.cut_slack > 0.0 && g.num_edges() > 0) {
      const double cut_bound = opt.cut_slack * opt.beta;
      if (stats.cut_fraction > cut_bound) {
        return ::testing::AssertionFailure()
               << "cut fraction " << stats.cut_fraction << " exceeds "
               << opt.cut_slack << " * beta = " << cut_bound;
      }
    }
  }

  return ::testing::AssertionSuccess();
}

::testing::AssertionResult check_weighted_decomposition_invariants(
    const WeightedDecomposition& dec, const WeightedCsrGraph& g,
    const WeightedInvariantOptions& opt) {
  const vertex_t n = g.num_vertices();
  if (dec.num_vertices() != n) {
    return ::testing::AssertionFailure()
           << "assignment covers " << dec.num_vertices() << " vertices, graph has "
           << n;
  }
  if (dec.dist_to_center.size() != n) {
    return ::testing::AssertionFailure()
           << "dist_to_center has " << dec.dist_to_center.size()
           << " entries, expected " << n;
  }
  const cluster_t k = dec.num_clusters();
  if (n > 0 && k == 0) {
    return ::testing::AssertionFailure() << "no clusters on a non-empty graph";
  }

  // Coverage: valid compact ids everywhere; centers strictly increasing,
  // each anchoring its own piece at distance zero.
  for (vertex_t v = 0; v < n; ++v) {
    if (dec.assignment[v] >= k) {
      return ::testing::AssertionFailure()
             << "vertex " << v << " assigned to invalid cluster "
             << dec.assignment[v] << " (k=" << k << ")";
    }
    if (dec.dist_to_center[v] < 0.0) {
      return ::testing::AssertionFailure()
             << "vertex " << v << " has negative radius "
             << dec.dist_to_center[v];
    }
  }
  for (cluster_t c = 0; c < k; ++c) {
    const vertex_t center = dec.centers[c];
    if (center >= n) {
      return ::testing::AssertionFailure()
             << "cluster " << c << " has out-of-range center " << center;
    }
    if (c > 0 && dec.centers[c - 1] >= center) {
      return ::testing::AssertionFailure()
             << "centers not strictly increasing at cluster " << c;
    }
    if (dec.assignment[center] != c) {
      return ::testing::AssertionFailure()
             << "center " << center << " of cluster " << c
             << " is assigned to cluster " << dec.assignment[center];
    }
    if (dec.dist_to_center[center] > opt.eps) {
      return ::testing::AssertionFailure()
             << "center " << center << " has nonzero radius "
             << dec.dist_to_center[center];
    }
  }

  // Distance exactness without Dijkstra: (a) feasibility — no in-piece arc
  // can shorten any recorded distance, so dist[v] <= the true in-piece
  // shortest-path distance; (b) realizability — every non-center has an
  // in-piece predecessor with dist[v] == dist[u] + w(u,v), and since
  // weights are positive the predecessor chain strictly decreases until it
  // reaches the center, exhibiting an in-piece path of length dist[v].
  // Together they pin dist as exact and prove in-piece connectivity.
  for (vertex_t v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(v);
    const auto ws = g.arc_weights(v);
    const double tol = opt.eps * (1.0 + dec.dist_to_center[v]);
    bool has_predecessor = dec.centers[dec.assignment[v]] == v;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const vertex_t u = nbrs[i];
      if (dec.assignment[u] != dec.assignment[v]) continue;
      const double via = dec.dist_to_center[u] + ws[i];
      if (via < dec.dist_to_center[v] - tol) {
        return ::testing::AssertionFailure()
               << "dist_to_center[" << v << "]=" << dec.dist_to_center[v]
               << " is not shortest: via in-piece neighbor " << u
               << " it would be " << via;
      }
      if (std::abs(via - dec.dist_to_center[v]) <= tol) has_predecessor = true;
    }
    if (!has_predecessor) {
      return ::testing::AssertionFailure()
             << "vertex " << v << " (cluster " << dec.assignment[v]
             << ", radius " << dec.dist_to_center[v]
             << ") has no in-piece predecessor realizing its distance";
    }
  }

  // Lemma 4.2 analogue: dist_w(v, center) <= delta[center].
  if (opt.shifts != nullptr) {
    for (vertex_t v = 0; v < n; ++v) {
      const vertex_t center = dec.centers[dec.assignment[v]];
      const double bound = opt.shifts->delta[center] +
                           opt.eps * (1.0 + opt.shifts->delta[center]);
      if (dec.dist_to_center[v] > bound) {
        return ::testing::AssertionFailure()
               << "radius " << dec.dist_to_center[v] << " of vertex " << v
               << " exceeds its center's shift "
               << opt.shifts->delta[center];
      }
    }
  }

  if (opt.beta > 0.0 && n > 0) {
    double max_radius = 0.0;
    for (vertex_t v = 0; v < n; ++v) {
      max_radius = std::max(max_radius, dec.dist_to_center[v]);
    }
    const double nn = std::max<double>(n, 2.0);
    const double radius_bound = opt.radius_slack * std::log(nn) / opt.beta;
    if (max_radius > radius_bound) {
      return ::testing::AssertionFailure()
             << "max weighted radius " << max_radius << " exceeds "
             << opt.radius_slack << " * ln(n)/beta = " << radius_bound;
    }
    if (opt.cut_slack > 0.0 && g.num_edges() > 0) {
      edge_t cut_edges = 0;
      double total_weight = 0.0;
      for (vertex_t u = 0; u < n; ++u) {
        const auto nbrs = g.neighbors(u);
        const auto ws = g.arc_weights(u);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          if (u > nbrs[i]) continue;  // each undirected edge once
          total_weight += ws[i];
          if (dec.assignment[u] != dec.assignment[nbrs[i]]) ++cut_edges;
        }
      }
      const double cut_bound = opt.cut_slack * opt.beta * total_weight;
      if (static_cast<double>(cut_edges) > cut_bound) {
        return ::testing::AssertionFailure()
               << "cut edges " << cut_edges << " exceed " << opt.cut_slack
               << " * beta * total_weight = " << cut_bound;
      }
    }
  }

  return ::testing::AssertionSuccess();
}

}  // namespace mpx::testing
