// Canonical graph fixtures shared by every suite.
//
// The corpus spans the families the paper singles out: the path (maximum
// piece count, Section 3), the complete graph (one piece swallows all,
// Section 3), meshes (Figure 1), expanders, trees, and disconnected and
// degenerate inputs. Keeping the list in one place means every suite that
// iterates "all shapes" exercises the same shapes, and a new stress family
// added here propagates to all of them.
#pragma once

#include <string>
#include <vector>

#include "core/decomposition.hpp"
#include "core/telemetry.hpp"
#include "graph/csr_graph.hpp"

namespace mpx::testing {

struct NamedGraph {
  std::string name;
  CsrGraph graph;
};

/// Degenerate inputs every routine must survive: empty graph, a single
/// vertex, two isolated vertices, one edge.
[[nodiscard]] std::vector<NamedGraph> degenerate_graphs();

/// Small corpus (n <= ~100) cheap enough for O(n * m) oracle checks.
[[nodiscard]] std::vector<NamedGraph> small_graphs();

/// Medium corpus (n up to a few thousand) for algorithmic property tests.
/// Includes everything in small_graphs().
[[nodiscard]] std::vector<NamedGraph> canonical_graphs();

/// Deterministic weighted fixture: generators::grid2d(3, 3) topology with
/// exactly-representable per-edge weights (multiples of 0.25), so golden
/// files built from it are byte-stable across platforms.
[[nodiscard]] WeightedCsrGraph grid3x3_weighted_reference();

/// Hand-authored two-piece decomposition of generators::grid2d(3, 3),
/// valid under verify_decomposition. Integer-only construction, so the
/// golden file built from it pins the serialization format alone — no
/// dependence on partition()'s floating-point shift draws.
[[nodiscard]] Decomposition grid3x3_reference_decomposition();

/// Hand-authored RunTelemetry with exactly-representable timings
/// (multiples of 1/8), so the telemetry-block golden file is byte-stable
/// across platforms.
[[nodiscard]] RunTelemetry reference_telemetry();

}  // namespace mpx::testing
