// Tests for the Section 6 weighted extension (shifted Dijkstra).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <queue>

#include "graph/builder.hpp"
#include "core/shifts.hpp"
#include "core/weighted_partition.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "support/random.hpp"
#include "tests/support/invariants.hpp"

namespace mpx {
namespace {

using namespace mpx::generators;

WeightedCsrGraph random_weights(const CsrGraph& g, std::uint64_t seed,
                                double lo, double hi) {
  const std::vector<Edge> edges = edge_list(g);
  std::vector<WeightedEdge> weighted;
  weighted.reserve(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const double u = uniform_double(hash_stream(seed, i));
    weighted.push_back({edges[i].u, edges[i].v, lo + (hi - lo) * u});
  }
  return build_undirected_weighted(g.num_vertices(),
                                   std::span<const WeightedEdge>(weighted));
}

PartitionOptions opts(double beta, std::uint64_t seed) {
  PartitionOptions o;
  o.beta = beta;
  o.seed = seed;
  return o;
}

TEST(WeightedPartition, CoversEveryVertexAndAnchorsCenters) {
  const WeightedCsrGraph g = random_weights(grid2d(15, 15), 3, 0.5, 2.0);
  const WeightedDecomposition dec = weighted_partition(g, opts(0.1, 4));
  EXPECT_EQ(dec.num_vertices(), g.num_vertices());
  EXPECT_GE(dec.num_clusters(), 1u);
  for (cluster_t c = 0; c < dec.num_clusters(); ++c) {
    EXPECT_EQ(dec.assignment[dec.centers[c]], c);
    EXPECT_DOUBLE_EQ(dec.dist_to_center[dec.centers[c]], 0.0);
  }
  EXPECT_TRUE(mpx::testing::check_weighted_decomposition_invariants(dec, g));
}

TEST(WeightedPartition, ClustersAreInternallyConnected) {
  const WeightedCsrGraph g = random_weights(erdos_renyi(200, 600, 7), 5, 0.1, 3.0);
  const WeightedDecomposition dec = weighted_partition(g, opts(0.2, 6));
  for (cluster_t c = 0; c < dec.num_clusters(); ++c) {
    const Subgraph sub =
        extract_cluster(g.topology(), dec.assignment, c);
    EXPECT_TRUE(is_connected(sub.graph)) << "cluster " << c;
  }
  // The invariant battery proves connectivity a second way (predecessor
  // chains) plus distance exactness.
  EXPECT_TRUE(mpx::testing::check_weighted_decomposition_invariants(
      dec, g, {.beta = 0.2}));
}

TEST(WeightedPartition, InvariantBatteryAcrossSeeds) {
  const WeightedCsrGraph g = random_weights(grid2d(20, 20), 11, 0.25, 4.0);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    PartitionOptions o = opts(0.15, seed);
    const Shifts shifts = generate_shifts(g.num_vertices(), o);
    const WeightedDecomposition dec = weighted_partition_with_shifts(g, shifts);
    EXPECT_TRUE(mpx::testing::check_weighted_decomposition_invariants(
        dec, g, {.beta = 0.15, .shifts = &shifts}));
  }
}

TEST(WeightedPartition, UnitWeightsBehaveLikeUnweighted) {
  // Same quality regime as the unweighted routine: radii bounded by the
  // max shift, cut fraction O(beta).
  const CsrGraph base = grid2d(25, 25);
  const WeightedCsrGraph g = with_unit_weights(base);
  const WeightedDecomposition dec = weighted_partition(g, opts(0.1, 8));
  const WeightedDecompositionStats s = analyze_weighted(dec, g);
  EXPECT_LE(s.cut_fraction, 0.5);
  const double bound =
      3.0 * std::log(static_cast<double>(base.num_vertices())) / 0.1;
  EXPECT_LE(s.max_radius, bound);
}

TEST(WeightedPartition, RadiiScaleWithEdgeWeights) {
  // Scaling all weights by 10 scales radii by 10 (same shifts => same
  // combinatorial partition, distances scale linearly... shifts do NOT
  // scale, so clusters change; instead check the radius bound scales).
  const CsrGraph base = grid2d(12, 12);
  const WeightedCsrGraph light = random_weights(base, 2, 0.5, 1.0);
  const WeightedCsrGraph heavy = random_weights(base, 2, 5.0, 10.0);
  const WeightedDecomposition dl = weighted_partition(light, opts(0.2, 3));
  const WeightedDecomposition dh = weighted_partition(heavy, opts(0.2, 3));
  const double rl = analyze_weighted(dl, light).max_radius;
  const double rh = analyze_weighted(dh, heavy).max_radius;
  // Heavier edges stretch distances; same shift distribution means more
  // and smaller clusters rather than 10x radii, but radii should grow.
  EXPECT_GT(rh, rl);
}

TEST(WeightedPartition, CutWeightFractionScalesWithBeta) {
  const WeightedCsrGraph g = random_weights(grid2d(30, 30), 9, 0.5, 1.5);
  double prev = -1.0;
  for (const double beta : {0.05, 0.3}) {
    double frac = 0.0;
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      frac += analyze_weighted(weighted_partition(g, opts(beta, seed)), g)
                  .cut_fraction;
    }
    frac /= 4.0;
    EXPECT_GT(frac, prev);
    prev = frac;
  }
}

TEST(WeightedPartition, DeterministicInSeed) {
  const WeightedCsrGraph g = random_weights(cycle(100), 1, 0.1, 1.0);
  const WeightedDecomposition a = weighted_partition(g, opts(0.1, 5));
  const WeightedDecomposition b = weighted_partition(g, opts(0.1, 5));
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.centers, b.centers);
}

TEST(WeightedPartition, RadiusNeverExceedsCenterShift) {
  // Continuous analogue of the Lemma 4.2 bound: dist(v, center) <=
  // delta_center (no floor slack in the Dijkstra formulation).
  const WeightedCsrGraph g = random_weights(erdos_renyi(150, 400, 2), 4, 0.2, 2.0);
  PartitionOptions o = opts(0.15, 11);
  const Shifts shifts = generate_shifts(g.num_vertices(), o);
  const WeightedDecomposition dec = weighted_partition(g, o);
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    const vertex_t center = dec.centers[dec.assignment[v]];
    EXPECT_LE(dec.dist_to_center[v], shifts.delta[center] + 1e-9);
  }
  EXPECT_TRUE(mpx::testing::check_weighted_decomposition_invariants(
      dec, g, {.shifts = &shifts}));
}

TEST(WeightedPartition, MatchesBruteForceArgmin) {
  // Algorithm 2 in the weighted setting, brute force: one Dijkstra per
  // candidate center, assign v to argmin(dist_w(u, v) - delta_u) with rank
  // ties — must agree with the super-source Dijkstra implementation.
  const WeightedCsrGraph g =
      random_weights(erdos_renyi(60, 150, 4), 8, 0.5, 3.0);
  const vertex_t n = g.num_vertices();
  PartitionOptions o = opts(0.2, 13);
  const Shifts shifts = generate_shifts(n, o);
  const WeightedDecomposition dec = weighted_partition_with_shifts(g, shifts);

  // Per-center Dijkstra.
  const auto dijkstra_from = [&](vertex_t src) {
    std::vector<double> dist(n, std::numeric_limits<double>::infinity());
    using Entry = std::pair<double, vertex_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
    dist[src] = 0.0;
    pq.push({0.0, src});
    while (!pq.empty()) {
      const auto [d, u] = pq.top();
      pq.pop();
      if (d != dist[u]) continue;
      const auto nbrs = g.neighbors(u);
      const auto ws = g.arc_weights(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (d + ws[i] < dist[nbrs[i]]) {
          dist[nbrs[i]] = d + ws[i];
          pq.push({dist[nbrs[i]], nbrs[i]});
        }
      }
    }
    return dist;
  };

  std::vector<vertex_t> best_owner(n, kInvalidVertex);
  std::vector<double> best_key(n, 0.0);
  for (vertex_t u = 0; u < n; ++u) {
    const std::vector<double> dist = dijkstra_from(u);
    for (vertex_t v = 0; v < n; ++v) {
      if (std::isinf(dist[v])) continue;
      const double key = dist[v] - shifts.delta[u];
      const bool better =
          best_owner[v] == kInvalidVertex || key < best_key[v] ||
          (key == best_key[v] &&
           shifts.rank[u] < shifts.rank[best_owner[v]]);
      if (better) {
        best_owner[v] = u;
        best_key[v] = key;
      }
    }
  }
  for (vertex_t v = 0; v < n; ++v) {
    EXPECT_EQ(dec.centers[dec.assignment[v]], best_owner[v]) << v;
  }
}

TEST(WeightedPartition, InvariantCheckerRejectsCorruption) {
  const WeightedCsrGraph g = random_weights(grid2d(10, 10), 6, 0.5, 2.0);
  const WeightedDecomposition good = weighted_partition(g, opts(0.2, 3));
  ASSERT_TRUE(mpx::testing::check_weighted_decomposition_invariants(good, g));

  {  // vertex moved to another piece: its distance can no longer be realized
    WeightedDecomposition bad = good;
    bad.assignment[0] = (bad.assignment[0] + 1) % bad.num_clusters();
    if (bad.num_clusters() > 1) {
      EXPECT_FALSE(
          mpx::testing::check_weighted_decomposition_invariants(bad, g));
    }
  }
  {  // inflated distance: feasibility/realizability must catch it
    WeightedDecomposition bad = good;
    vertex_t v = 0;
    while (good.centers[good.assignment[v]] == v) ++v;  // pick a non-center
    bad.dist_to_center[v] += 1.0;
    EXPECT_FALSE(
        mpx::testing::check_weighted_decomposition_invariants(bad, g));
  }
  {  // center displaced from its own piece
    WeightedDecomposition bad = good;
    bad.dist_to_center[bad.centers[0]] = 0.5;
    EXPECT_FALSE(
        mpx::testing::check_weighted_decomposition_invariants(bad, g));
  }
}

TEST(WeightedPartition, SingleVertexGraph) {
  const std::vector<WeightedEdge> none;
  const WeightedCsrGraph g =
      build_undirected_weighted(1, std::span<const WeightedEdge>(none));
  const WeightedDecomposition dec = weighted_partition(g, opts(0.5, 1));
  EXPECT_EQ(dec.num_clusters(), 1u);
}

}  // namespace
}  // namespace mpx
