// Tests for the S2 parallel-primitives layer: for/reduce/scan/pack/sort
// and the atomic helpers every concurrent algorithm relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <vector>

#include "parallel/atomics.hpp"
#include "parallel/pack.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/reduce.hpp"
#include "parallel/scan.hpp"
#include "parallel/sort.hpp"
#include "parallel/thread_env.hpp"
#include "support/random.hpp"

namespace mpx {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  const std::size_t n = 100000;
  std::vector<int> hits(n, 0);
  parallel_for(std::size_t{0}, n, [&](std::size_t i) { ++hits[i]; });
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(ParallelFor, HandlesEmptyAndSmallRanges) {
  int count = 0;
  parallel_for(0, 0, [&](int) { ++count; });
  EXPECT_EQ(count, 0);
  parallel_for(5, 5, [&](int) { ++count; });
  EXPECT_EQ(count, 0);
  parallel_for(0, 3, [&](int) { ++count; });
  EXPECT_EQ(count, 3);
}

TEST(ParallelForDynamic, VisitsEveryIndexExactlyOnce) {
  const std::size_t n = 50000;
  std::vector<int> hits(n, 0);
  parallel_for_dynamic(std::size_t{0}, n, [&](std::size_t i) { ++hits[i]; });
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(ParallelReduce, SumMatchesSequential) {
  const std::size_t n = 123457;
  const std::uint64_t sum = parallel_sum<std::uint64_t>(
      std::size_t{0}, n, [](std::size_t i) { return i; });
  EXPECT_EQ(sum, static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

TEST(ParallelReduce, SumOfEmptyRangeIsIdentity) {
  EXPECT_EQ((parallel_sum<int>(0, 0, [](int) { return 1; })), 0);
}

TEST(ParallelReduce, MaxAndMin) {
  std::vector<std::uint32_t> data(77777);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint32_t>(hash_stream(3, i) % 1000000);
  }
  const std::uint32_t expected_max = *std::max_element(data.begin(), data.end());
  const std::uint32_t expected_min = *std::min_element(data.begin(), data.end());
  EXPECT_EQ((parallel_max(std::size_t{0}, data.size(), std::uint32_t{0},
                          [&](std::size_t i) { return data[i]; })),
            expected_max);
  EXPECT_EQ((parallel_min(std::size_t{0}, data.size(),
                          std::numeric_limits<std::uint32_t>::max(),
                          [&](std::size_t i) { return data[i]; })),
            expected_min);
}

TEST(ParallelReduce, CountIf) {
  const std::size_t n = 100000;
  const std::size_t evens =
      parallel_count_if(std::size_t{0}, n,
                        [](std::size_t i) { return i % 2 == 0; });
  EXPECT_EQ(evens, n / 2);
}

TEST(ParallelReduce, GeneralCombineWithNonCommutativeCheck) {
  // XOR is associative and commutative; use it to stress the combiner.
  const std::size_t n = 65536;
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < n; ++i) expected ^= hash_stream(1, i);
  const std::uint64_t got = parallel_reduce<std::uint64_t>(
      std::size_t{0}, n, 0ull, [](std::size_t i) { return hash_stream(1, i); },
      [](std::uint64_t a, std::uint64_t b) { return a ^ b; });
  EXPECT_EQ(got, expected);
}

TEST(Scan, MatchesSequentialExclusiveScan) {
  for (const std::size_t n : {0u, 1u, 7u, 2048u, 100001u}) {
    std::vector<std::uint64_t> data(n);
    for (std::size_t i = 0; i < n; ++i) data[i] = hash_stream(5, i) % 10;
    std::vector<std::uint64_t> expected(n);
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      expected[i] = acc;
      acc += data[i];
    }
    std::vector<std::uint64_t> got = data;
    const std::uint64_t total =
        exclusive_scan_inplace(std::span<std::uint64_t>(got));
    EXPECT_EQ(total, acc) << "n = " << n;
    EXPECT_EQ(got, expected) << "n = " << n;
  }
}

TEST(Scan, OffsetsFromCounts) {
  const std::vector<std::uint64_t> counts = {3, 0, 5, 1};
  const std::vector<std::uint64_t> offsets =
      offsets_from_counts(std::span<const std::uint64_t>(counts));
  EXPECT_EQ(offsets, (std::vector<std::uint64_t>{0, 3, 3, 8, 9}));
}

TEST(Scan, OffsetsFromEmptyCounts) {
  const std::vector<std::uint64_t> counts;
  const std::vector<std::uint64_t> offsets =
      offsets_from_counts(std::span<const std::uint64_t>(counts));
  EXPECT_EQ(offsets, (std::vector<std::uint64_t>{0}));
}

TEST(Pack, CollectsMatchingIndicesInOrder) {
  const std::uint32_t n = 100000;
  const auto multiples_of_7 =
      pack_indices(n, [](std::uint32_t i) { return i % 7 == 0; });
  ASSERT_EQ(multiples_of_7.size(), (n + 6) / 7);
  for (std::size_t i = 0; i < multiples_of_7.size(); ++i) {
    EXPECT_EQ(multiples_of_7[i], 7 * i);
  }
  EXPECT_TRUE(std::is_sorted(multiples_of_7.begin(), multiples_of_7.end()));
}

TEST(Pack, AllAndNone) {
  const std::uint32_t n = 5000;
  EXPECT_EQ(pack_indices(n, [](std::uint32_t) { return true; }).size(), n);
  EXPECT_TRUE(pack_indices(n, [](std::uint32_t) { return false; }).empty());
  EXPECT_TRUE(
      pack_indices(std::uint32_t{0}, [](std::uint32_t) { return true; })
          .empty());
}

TEST(Pack, MapVariant) {
  const std::uint32_t n = 10000;
  const auto squares = pack_map<std::uint64_t>(
      n, [](std::uint32_t i) { return i % 100 == 0; },
      [](std::uint32_t i) { return std::uint64_t{i} * i; });
  ASSERT_EQ(squares.size(), 100u);
  for (std::size_t i = 0; i < squares.size(); ++i) {
    const std::uint64_t v = 100 * i;
    EXPECT_EQ(squares[i], v * v);
  }
}

TEST(Sort, SortsRandomData) {
  std::vector<std::uint64_t> data(200000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = hash_stream(9, i);
  std::vector<std::uint64_t> expected = data;
  std::sort(expected.begin(), expected.end());
  parallel_sort(std::span<std::uint64_t>(data));
  EXPECT_EQ(data, expected);
}

TEST(Sort, HandlesTinySortedReversedAndDuplicateInputs) {
  std::vector<int> empty;
  parallel_sort(std::span<int>(empty));
  EXPECT_TRUE(empty.empty());

  std::vector<int> one = {42};
  parallel_sort(std::span<int>(one));
  EXPECT_EQ(one, std::vector<int>{42});

  std::vector<int> sorted(10000);
  std::iota(sorted.begin(), sorted.end(), 0);
  std::vector<int> copy = sorted;
  parallel_sort(std::span<int>(copy));
  EXPECT_EQ(copy, sorted);

  std::vector<int> reversed(10000);
  std::iota(reversed.rbegin(), reversed.rend(), 0);
  parallel_sort(std::span<int>(reversed));
  EXPECT_EQ(reversed, sorted);

  std::vector<int> dups(50000);
  for (std::size_t i = 0; i < dups.size(); ++i) {
    dups[i] = static_cast<int>(hash_stream(2, i) % 5);
  }
  std::vector<int> dups_expected = dups;
  std::sort(dups_expected.begin(), dups_expected.end());
  parallel_sort(std::span<int>(dups));
  EXPECT_EQ(dups, dups_expected);
}

TEST(Sort, CustomComparator) {
  std::vector<std::uint32_t> data(30000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint32_t>(hash_stream(4, i));
  }
  parallel_sort(std::span<std::uint32_t>(data), std::greater<>{});
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end(), std::greater<>{}));
}

TEST(Atomics, FetchMinLowersMonotonically) {
  std::uint32_t cell = 100;
  EXPECT_TRUE(atomic_fetch_min(cell, std::uint32_t{50}));
  EXPECT_EQ(cell, 50u);
  EXPECT_FALSE(atomic_fetch_min(cell, std::uint32_t{70}));
  EXPECT_EQ(cell, 50u);
  EXPECT_FALSE(atomic_fetch_min(cell, std::uint32_t{50}));
}

TEST(Atomics, FetchMaxRaisesMonotonically) {
  std::uint64_t cell = 10;
  EXPECT_TRUE(atomic_fetch_max(cell, std::uint64_t{20}));
  EXPECT_FALSE(atomic_fetch_max(cell, std::uint64_t{15}));
  EXPECT_EQ(cell, 20u);
}

TEST(Atomics, ConcurrentFetchMinFindsGlobalMin) {
  std::uint64_t cell = ~std::uint64_t{0};
  const std::size_t n = 200000;
  std::uint64_t expected = ~std::uint64_t{0};
  std::vector<std::uint64_t> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = hash_stream(8, i);
    expected = std::min(expected, values[i]);
  }
  parallel_for(std::size_t{0}, n,
               [&](std::size_t i) { atomic_fetch_min(cell, values[i]); });
  EXPECT_EQ(cell, expected);
}

TEST(Atomics, ClaimSucceedsExactlyOnce) {
  std::uint32_t cell = 0;
  std::atomic<int> winners{0};
  parallel_for(std::size_t{0}, std::size_t{100000}, [&](std::size_t) {
    if (atomic_claim(cell, std::uint32_t{0}, std::uint32_t{1})) ++winners;
  });
  EXPECT_EQ(winners.load(), 1);
  EXPECT_EQ(cell, 1u);
}

TEST(Atomics, FetchAddAccumulates) {
  std::uint64_t cell = 0;
  const std::size_t n = 100000;
  parallel_for(std::size_t{0}, n,
               [&](std::size_t) { atomic_fetch_add(cell, std::uint64_t{1}); });
  EXPECT_EQ(cell, n);
}

TEST(ThreadEnv, ReportsAtLeastOneThread) {
  EXPECT_GE(num_threads(), 1);
  EXPECT_GE(max_threads(), 1);
  EXPECT_FALSE(in_parallel());
}

TEST(ThreadEnv, ScopedNumThreadsRestores) {
  const int before = num_threads();
  {
    ScopedNumThreads guard(1);
    EXPECT_EQ(num_threads(), 1);
  }
  EXPECT_EQ(num_threads(), before);
}

TEST(ThreadEnv, ParallelResultsIdenticalAcrossThreadCounts) {
  // The determinism contract: a representative scan + pack pipeline gives
  // identical results with 1 and max threads.
  std::vector<std::uint64_t> data(50000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = hash_stream(6, i) % 3;

  std::vector<std::uint64_t> run1;
  std::vector<std::uint64_t> run2;
  {
    ScopedNumThreads guard(1);
    run1 = data;
    exclusive_scan_inplace(std::span<std::uint64_t>(run1));
  }
  {
    ScopedNumThreads guard(max_threads());
    run2 = data;
    exclusive_scan_inplace(std::span<std::uint64_t>(run2));
  }
  EXPECT_EQ(run1, run2);
}

}  // namespace
}  // namespace mpx
