// Tests for the BGKMPT (SPAA'11) iterative baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/builder.hpp"
#include "baselines/bgkmpt.hpp"
#include "core/metrics.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "tests/support/fixtures.hpp"
#include "tests/support/invariants.hpp"

namespace mpx {
namespace {

using namespace mpx::generators;
using mpx::testing::check_decomposition_invariants;

BgkmptOptions opts(double beta, std::uint64_t seed) {
  BgkmptOptions o;
  o.beta = beta;
  o.seed = seed;
  return o;
}

TEST(Bgkmpt, ProducesValidDecompositions) {
  for (const auto& ng : mpx::testing::canonical_graphs()) {
    SCOPED_TRACE(ng.name);
    const BgkmptResult r = bgkmpt_decomposition(ng.graph, opts(0.2, 1));
    EXPECT_TRUE(check_decomposition_invariants(r.decomposition, ng.graph));
  }
}

TEST(Bgkmpt, PhaseCountIsLogarithmic) {
  const CsrGraph g = grid2d(32, 32);  // n = 1024
  const BgkmptResult r = bgkmpt_decomposition(g, opts(0.2, 2));
  // Sampling probability reaches 1 by phase ceil(log2 n); allow slack for
  // empty early phases.
  EXPECT_LE(r.phases, 12u);
  EXPECT_GE(r.phases, 1u);
}

TEST(Bgkmpt, MultiPhaseDepthExceedsSingleShot) {
  // The structural point of the comparison (E7): BGKMPT spends BFS rounds
  // across many phases.
  const CsrGraph g = grid2d(40, 40);
  const BgkmptResult r = bgkmpt_decomposition(g, opts(0.1, 3));
  EXPECT_GT(r.phases, 1u);
  EXPECT_GT(r.total_rounds, 0u);
}

TEST(Bgkmpt, CutFractionIsModest) {
  const CsrGraph g = grid2d(40, 40);
  double cut = 0.0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const BgkmptResult r = bgkmpt_decomposition(g, opts(0.1, seed));
    cut += analyze(r.decomposition, g).cut_fraction;
  }
  // Truncation adds boundary beyond the shifted-cut bound; stay generous.
  EXPECT_LE(cut / 3.0, 0.6);
}

TEST(Bgkmpt, RadiusBounded) {
  const CsrGraph g = erdos_renyi(800, 2400, 7);
  const BgkmptOptions o = opts(0.15, 4);
  const BgkmptResult r = bgkmpt_decomposition(g, o);
  const DecompositionStats s = analyze(r.decomposition, g);
  // Phase radius cap: shift window + radius budget.
  const double budget =
      o.radius_scale * std::log(static_cast<double>(g.num_vertices()) + 1.0) /
      o.beta;
  EXPECT_LE(static_cast<double>(s.max_radius),
            budget + 3.0 * std::log(static_cast<double>(g.num_vertices())) /
                         o.beta);
}

TEST(Bgkmpt, SeedDeterminism) {
  const CsrGraph g = erdos_renyi(200, 600, 5);
  const BgkmptResult a = bgkmpt_decomposition(g, opts(0.2, 9));
  const BgkmptResult b = bgkmpt_decomposition(g, opts(0.2, 9));
  EXPECT_TRUE(std::equal(a.decomposition.assignment().begin(),
                         a.decomposition.assignment().end(),
                         b.decomposition.assignment().begin()));
  EXPECT_EQ(a.phases, b.phases);
}

TEST(Bgkmpt, HandlesDisconnectedAndTinyGraphs) {
  const CsrGraph g = disjoint_copies(cycle(10), 4);
  const BgkmptResult r = bgkmpt_decomposition(g, opts(0.3, 1));
  EXPECT_TRUE(verify_decomposition(r.decomposition, g).ok);

  const std::vector<Edge> none;
  const CsrGraph empty = build_undirected(0, std::span<const Edge>(none));
  const BgkmptResult r0 = bgkmpt_decomposition(empty, opts(0.3, 1));
  EXPECT_EQ(r0.decomposition.num_clusters(), 0u);

  const CsrGraph one = build_undirected(1, std::span<const Edge>(none));
  const BgkmptResult r1 = bgkmpt_decomposition(one, opts(0.3, 1));
  EXPECT_EQ(r1.decomposition.num_clusters(), 1u);
}

}  // namespace
}  // namespace mpx
