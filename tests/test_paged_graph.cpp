// Tests for the out-of-core storage layer (src/storage/): the thread-safe
// sharded block cache (pins survive eviction, budget bounds residency,
// stats account every decode), the PagedGraph read surface against the
// in-memory graph, paged-vs-in-memory byte-identity of the mpx
// decomposition across the fixture corpus x {1, 2, 8} threads x cache
// budgets, the paged session/store/oracle query surface, the
// degree-descending snapshot placement, and the documented
// span-invalidation hazard of the legacy io::BlockCache.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/decomposer.hpp"
#include "core/session.hpp"
#include "graph/generators.hpp"
#include "graph/snapshot.hpp"
#include "graph/snapshot_blocks.hpp"
#include "parallel/thread_env.hpp"
#include "storage/block_cache.hpp"
#include "storage/paged_graph.hpp"
#include "support/random.hpp"
#include "tests/support/fixtures.hpp"
#include "tests/support/temp_dir.hpp"

namespace mpx {
namespace {

using mpx::testing::NamedGraph;
using mpx::testing::TempDir;

/// Saves `g` cold and opens a shared reader on the file.
std::shared_ptr<const io::SnapshotBlockReader> cold_reader(
    const TempDir& tmp, const CsrGraph& g, std::uint32_t block_size,
    const std::string& name = "paged.mpxs") {
  const std::string path = tmp.file(name);
  io::SnapshotWriteOptions cold;
  cold.tier = io::SnapshotTier::kCold;
  cold.block_size = block_size;
  io::save_snapshot(path, g, cold);
  return std::make_shared<io::SnapshotBlockReader>(path);
}

/// Decoded-target bytes of one full block — the eviction granularity.
std::uint64_t block_bytes(const io::SnapshotBlockReader& reader) {
  return static_cast<std::uint64_t>(reader.block_size()) * sizeof(vertex_t);
}

// --- ShardedBlockCache -----------------------------------------------------

TEST(ShardedBlockCache, PinReturnsDecodedBlock) {
  TempDir tmp("paged");
  const CsrGraph g = generators::rmat(9, 6.0, 3);
  const auto reader = cold_reader(tmp, g, 64);
  storage::ShardedBlockCache cache(reader, /*budget_bytes=*/0);
  for (std::size_t b = 0; b < reader->num_blocks(); ++b) {
    const storage::BlockPin pin = cache.pin(b);
    ASSERT_EQ(pin->size(), reader->block_arc_count(b));
    const auto begin = g.targets().begin() +
                       static_cast<std::ptrdiff_t>(reader->block_arc_begin(b));
    EXPECT_TRUE(std::equal(pin->begin(), pin->end(), begin)) << "block " << b;
  }
}

TEST(ShardedBlockCache, RepinHitsWithoutDecoding) {
  TempDir tmp("paged");
  const CsrGraph g = generators::grid2d(16, 16);
  const auto reader = cold_reader(tmp, g, 64);
  storage::ShardedBlockCache cache(reader, /*budget_bytes=*/0);
  (void)cache.pin(0);
  (void)cache.pin(0);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.resident_blocks, 1u);
}

TEST(ShardedBlockCache, BudgetBoundsResidencyAndCountsEvictions) {
  TempDir tmp("paged");
  const CsrGraph g = generators::grid2d(24, 24);
  const auto reader = cold_reader(tmp, g, 32);
  ASSERT_GT(reader->num_blocks(), 4u);
  // One shard makes the bound exact: at most two blocks' bytes resident
  // (budget) and never fewer than the MRU block.
  storage::ShardedBlockCache cache(reader, 2 * block_bytes(*reader),
                                   /*num_shards=*/1);
  for (std::size_t b = 0; b < reader->num_blocks(); ++b) (void)cache.pin(b);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, reader->num_blocks());
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.resident_bytes, 2 * block_bytes(*reader));
  EXPECT_GE(stats.resident_blocks, 1u);
}

TEST(ShardedBlockCache, PinnedBlockSurvivesEviction) {
  TempDir tmp("paged");
  const CsrGraph g = generators::grid2d(24, 24);
  const auto reader = cold_reader(tmp, g, 32);
  // Budget of one block: every new pin evicts the cache's reference to
  // the previous block.
  storage::ShardedBlockCache cache(reader, block_bytes(*reader),
                                   /*num_shards=*/1);
  const storage::BlockPin held = cache.pin(0);
  const std::vector<vertex_t> expected(*held);
  for (std::size_t b = 1; b < reader->num_blocks(); ++b) (void)cache.pin(b);
  EXPECT_GT(cache.stats().evictions, 0u);
  // The pin API's whole point: the bytes outlive the eviction (ASan
  // would flag this dereference if eviction freed them).
  EXPECT_EQ(*held, expected);
}

TEST(ShardedBlockCache, EightThreadHammerStaysConsistent) {
  // Concurrent pins across a tiny budget: every thread must always see
  // correct block contents, whatever the interleaving of decodes,
  // adoptions, and evictions. The TSan job runs this binary.
  TempDir tmp("paged");
  const CsrGraph g = generators::rmat(10, 6.0, 7);
  const auto reader = cold_reader(tmp, g, 64);
  const std::size_t num_blocks = reader->num_blocks();
  ASSERT_GT(num_blocks, 8u);
  storage::ShardedBlockCache cache(reader, 2 * block_bytes(*reader));
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (unsigned t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256pp rng(0xC0FFEE + t);
      for (int i = 0; i < 400; ++i) {
        const std::size_t b = rng.next_below(num_blocks);
        const storage::BlockPin pin = cache.pin(b);
        const auto begin =
            g.targets().begin() +
            static_cast<std::ptrdiff_t>(reader->block_arc_begin(b));
        if (pin->size() != reader->block_arc_count(b) ||
            !std::equal(pin->begin(), pin->end(), begin)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 8u * 400u);
}

// --- the legacy io::BlockCache hazard (satellite: regression-document) -----

TEST(OldBlockCache, OldBlockCacheSpanDiesOnEviction) {
  // Documents the span-invalidation contract storage::ShardedBlockCache
  // exists to close: a span returned by io::BlockCache::neighbors()
  // aliases the cache's internal buffer and dies when a later call evicts
  // that block. With MPX_DEMONSTRATE_UAF=1 this test dereferences the
  // stale span so ASan proves the old behavior unsafe; without it, it
  // only asserts the eviction that would have freed the bytes happened.
  TempDir tmp("paged");
  const CsrGraph g = generators::grid2d(16, 16);
  const auto reader = cold_reader(tmp, g, 32);
  ASSERT_GT(reader->num_blocks(), 2u);
  io::BlockCache cache(reader, /*max_resident_blocks=*/1);
  const std::span<const vertex_t> stale = cache.neighbors(0);
  ASSERT_FALSE(stale.empty());
  // Touch the far end of the file: capacity 1 forces the eviction of the
  // block backing `stale`.
  (void)cache.neighbors(g.num_vertices() - 1);
  ASSERT_GT(cache.stats().evictions, 0u);
  if (std::getenv("MPX_DEMONSTRATE_UAF") != nullptr) {
    // Use-after-evict, on purpose. ASan reports heap-use-after-free here.
    volatile vertex_t sink = stale[0];
    (void)sink;
  }
  // The pinned replacement has no such hazard (see PinnedBlockSurvivesEviction).
}

// --- PagedGraph ------------------------------------------------------------

TEST(PagedGraph, MatchesInMemoryReadSurface) {
  TempDir tmp("paged");
  // Small blocks force plenty of cross-block adjacency runs; the star
  // guarantees a single run spanning many blocks.
  const std::vector<NamedGraph> corpus = [] {
    std::vector<NamedGraph> v = mpx::testing::small_graphs();
    v.push_back({"star_200", generators::star(200)});
    return v;
  }();
  for (const NamedGraph& named : corpus) {
    const CsrGraph& g = named.graph;
    if (g.num_arcs() == 0) continue;  // cold blocks need arcs
    const auto reader = cold_reader(tmp, g, 8, named.name + ".mpxs");
    const storage::PagedGraph paged(reader, /*cache_budget_bytes=*/64);
    ASSERT_EQ(paged.num_vertices(), g.num_vertices()) << named.name;
    ASSERT_EQ(paged.num_edges(), g.num_edges()) << named.name;
    ASSERT_EQ(paged.num_arcs(), g.num_arcs()) << named.name;
    for (vertex_t v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(paged.degree(v), g.degree(v)) << named.name << " v=" << v;
      const auto got = paged.neighbors(v);
      const auto want = g.neighbors(v);
      ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin(),
                             want.end()))
          << named.name << " v=" << v;
    }
  }
}

TEST(PagedGraph, SpanValidUntilNextCallOnSameThread) {
  TempDir tmp("paged");
  const CsrGraph g = generators::grid2d(12, 12);
  const auto reader = cold_reader(tmp, g, 16);
  const storage::PagedGraph paged(reader, 2 * block_bytes(*reader));
  for (vertex_t v = 0; v + 1 < g.num_vertices(); ++v) {
    const auto span = paged.neighbors(v);
    // Use the span fully before the next call — the documented contract.
    const std::vector<vertex_t> copy(span.begin(), span.end());
    const auto want = g.neighbors(v);
    ASSERT_TRUE(std::equal(copy.begin(), copy.end(), want.begin(),
                           want.end()))
        << "v=" << v;
  }
}

TEST(PagedGraph, ConcurrentReadersSeeConsistentAdjacency) {
  TempDir tmp("paged");
  const CsrGraph g = generators::rmat(9, 8.0, 1);
  const auto reader = cold_reader(tmp, g, 32);
  const storage::PagedGraph paged(reader, 2 * block_bytes(*reader));
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256pp rng(17 * (t + 1));
      for (int i = 0; i < 300; ++i) {
        const vertex_t v =
            static_cast<vertex_t>(rng.next_below(g.num_vertices()));
        const auto got = paged.neighbors(v);
        const auto want = g.neighbors(v);
        if (!std::equal(got.begin(), got.end(), want.begin(), want.end())) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(PagedWeightedGraph, ServesResidentWeights) {
  TempDir tmp("paged");
  const WeightedCsrGraph g = mpx::testing::grid3x3_weighted_reference();
  const std::string path = tmp.file("weighted.mpxs");
  io::SnapshotWriteOptions cold;
  cold.tier = io::SnapshotTier::kCold;
  cold.block_size = 4;
  io::save_snapshot(path, g, cold);
  auto reader = std::make_shared<const io::SnapshotBlockReader>(path);
  const storage::PagedWeightedGraph paged(reader, /*cache_budget_bytes=*/64);
  ASSERT_EQ(paged.num_vertices(), g.num_vertices());
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    const auto got_n = paged.neighbors(v);
    const auto want_n = g.topology().neighbors(v);
    ASSERT_TRUE(std::equal(got_n.begin(), got_n.end(), want_n.begin(),
                           want_n.end()));
    const auto got_w = paged.arc_weights(v);
    const auto want_w = g.arc_weights(v);
    ASSERT_TRUE(std::equal(got_w.begin(), got_w.end(), want_w.begin(),
                           want_w.end()));
  }
}

// --- paged decomposition byte-identity -------------------------------------

TEST(PagedDecomposition, ByteIdenticalAcrossThreadsAndBudgets) {
  TempDir tmp("paged");
  DecompositionRequest req;
  req.algorithm = "mpx";
  req.beta = 0.2;
  req.seed = 7;
  for (const NamedGraph& named : mpx::testing::small_graphs()) {
    const CsrGraph& g = named.graph;
    if (g.num_arcs() == 0) continue;
    const DecompositionResult want = decompose(g, req);
    const auto reader = cold_reader(tmp, g, 8, named.name + ".mpxs");
    // Budgets: unbounded, and a 2-block squeeze far below the graph.
    const std::uint64_t budgets[] = {0, 2 * block_bytes(*reader)};
    for (const std::uint64_t budget : budgets) {
      for (const int threads : {1, 2, 8}) {
        ScopedNumThreads scoped(threads);
        const storage::PagedGraph paged(reader, budget);
        const DecompositionResult got = decompose(paged, req);
        ASSERT_EQ(got.owner, want.owner)
            << named.name << " threads=" << threads << " budget=" << budget;
        ASSERT_EQ(got.settle, want.settle)
            << named.name << " threads=" << threads << " budget=" << budget;
      }
    }
  }
}

TEST(PagedDecomposition, TelemetryCarriesCacheDeltas) {
  TempDir tmp("paged");
  const CsrGraph g = generators::grid2d(16, 16);
  const auto reader = cold_reader(tmp, g, 32);
  const storage::PagedGraph paged(reader, 2 * block_bytes(*reader));
  DecompositionRequest req;
  req.beta = 0.2;
  const DecompositionResult first = decompose(paged, req);
  // The whole graph is scanned at least once, so decodes happened.
  EXPECT_GT(first.telemetry.cache_misses, 0u);
  const auto total_after_first = paged.cache().stats();
  const DecompositionResult second = decompose(paged, req);
  // Per-run deltas, not lifetime totals: the second run starts from the
  // first run's warm cache, so its counters stand alone.
  EXPECT_EQ(second.telemetry.cache_hits + second.telemetry.cache_misses,
            paged.cache().stats().hits + paged.cache().stats().misses -
                total_after_first.hits - total_after_first.misses);
}

TEST(PagedDecomposition, OnlyMpxIsServedPaged) {
  TempDir tmp("paged");
  const CsrGraph g = generators::grid2d(8, 8);
  const auto reader = cold_reader(tmp, g, 32);
  const storage::PagedGraph paged(reader, 0);
  DecompositionRequest req;
  req.algorithm = "ball-growing";
  EXPECT_THROW((void)decompose(paged, req), std::invalid_argument);
}

// --- paged sessions --------------------------------------------------------

/// Saves `g` cold and returns the path.
std::string save_cold(const TempDir& tmp, const CsrGraph& g,
                      std::uint32_t block_size, const std::string& name) {
  const std::string path = tmp.file(name);
  io::SnapshotWriteOptions cold;
  cold.tier = io::SnapshotTier::kCold;
  cold.block_size = block_size;
  io::save_snapshot(path, g, cold);
  return path;
}

TEST(PagedSession, BudgetSelectsPagedModeAndQueriesMatch) {
  TempDir tmp("paged");
  const CsrGraph g = generators::grid2d(20, 20);
  const std::string path = save_cold(tmp, g, 32, "session.mpxs");
  SessionConfig config;
  config.memory_budget_bytes = 1024;  // far below the ~15 KB resident estimate
  DecompositionSession paged = DecompositionSession::open_snapshot(path,
                                                                   config);
  ASSERT_TRUE(paged.paged());
  EXPECT_EQ(paged.num_vertices(), g.num_vertices());
  EXPECT_EQ(paged.num_edges(), g.num_edges());
  EXPECT_THROW((void)paged.topology(), std::logic_error);

  DecompositionSession inmem = DecompositionSession::open_snapshot(path);
  ASSERT_FALSE(inmem.paged());

  DecompositionRequest req;
  req.beta = 0.15;
  req.seed = 3;
  EXPECT_EQ(paged.run(req).owner, inmem.run(req).owner);
  EXPECT_GT(paged.run(req).telemetry.cache_misses, 0u);
  // The full query surface over a never-fully-resident graph.
  const auto b_paged = paged.boundary_arcs(req);
  const auto b_inmem = inmem.boundary_arcs(req);
  ASSERT_EQ(b_paged.size(), b_inmem.size());
  EXPECT_TRUE(std::equal(b_paged.begin(), b_paged.end(), b_inmem.begin()));
  EXPECT_EQ(paged.estimate_distance(0, g.num_vertices() - 1, req),
            inmem.estimate_distance(0, g.num_vertices() - 1, req));
  EXPECT_EQ(paged.cluster_of(5, req), inmem.cluster_of(5, req));
  // Lifetime cache counters are live on the paged session only.
  EXPECT_GT(paged.cache_stats().misses, 0u);
  EXPECT_EQ(inmem.cache_stats().misses, 0u);
}

TEST(PagedSession, LargeBudgetStaysInMemory) {
  TempDir tmp("paged");
  const CsrGraph g = generators::grid2d(8, 8);
  const std::string path = save_cold(tmp, g, 32, "large.mpxs");
  SessionConfig config;
  config.memory_budget_bytes = 1ull << 30;
  DecompositionSession session =
      DecompositionSession::open_snapshot(path, config);
  EXPECT_FALSE(session.paged());
}

TEST(PagedSession, MaterializeEnablesConstQueries) {
  TempDir tmp("paged");
  const CsrGraph g = generators::grid2d(16, 16);
  const std::string path = save_cold(tmp, g, 32, "mat.mpxs");
  SessionConfig config;
  config.memory_budget_bytes = 512;
  DecompositionSession session =
      DecompositionSession::open_snapshot(path, config);
  ASSERT_TRUE(session.paged());
  DecompositionRequest req;
  req.beta = 0.2;
  (void)session.materialize(req);
  const DecompositionSession& view = session;
  EXPECT_EQ(view.owner_of(3, req), session.run(req).owner[3]);
  EXPECT_GE(view.num_clusters(req), 1u);
  (void)view.boundary_arcs(req);
  (void)view.estimate_distance(0, 5, req);
}

TEST(PagedStore, AcquireMatchesInMemoryStore) {
  TempDir tmp("paged");
  const CsrGraph g = generators::grid2d(16, 16);
  const std::string path = save_cold(tmp, g, 32, "store.mpxs");
  auto reader = std::make_shared<const io::SnapshotBlockReader>(path);
  SharedResultStore paged(std::make_shared<storage::PagedGraph>(
      std::move(reader), /*cache_budget_bytes=*/1024));
  SharedResultStore inmem(io::load_snapshot(path));
  ASSERT_TRUE(paged.paged());
  EXPECT_EQ(paged.num_vertices(), g.num_vertices());
  EXPECT_EQ(paged.num_edges(), g.num_edges());
  EXPECT_THROW((void)paged.topology(), std::logic_error);
  DecompositionRequest req;
  req.beta = 0.2;
  const auto got = paged.acquire(req);
  const auto want = inmem.acquire(req);
  EXPECT_EQ(got.entry->result().owner, want.entry->result().owner);
  const auto b_got = got.entry->boundary_arcs();
  const auto b_want = want.entry->boundary_arcs();
  ASSERT_EQ(b_got.size(), b_want.size());
  EXPECT_TRUE(std::equal(b_got.begin(), b_got.end(), b_want.begin()));
  EXPECT_EQ(got.entry->estimate_distance(0, 100),
            want.entry->estimate_distance(0, 100));
  EXPECT_GT(paged.cache_stats().misses, 0u);
}

// --- snapshot info estimate ------------------------------------------------

TEST(SnapshotInfo, ResidentBytesEstimateMatchesFormula) {
  TempDir tmp("paged");
  const CsrGraph g = generators::grid2d(10, 10);
  const std::string path = save_cold(tmp, g, 32, "info.mpxs");
  const io::SnapshotInfo info = io::read_snapshot_info(path);
  EXPECT_EQ(info.resident_bytes_estimate(),
            (static_cast<std::uint64_t>(g.num_vertices()) + 1) * 8 +
                static_cast<std::uint64_t>(g.num_arcs()) * 4);

  const WeightedCsrGraph wg = mpx::testing::grid3x3_weighted_reference();
  const std::string wpath = tmp.file("winfo.mpxs");
  io::save_snapshot(wpath, wg);
  const io::SnapshotInfo winfo = io::read_snapshot_info(wpath);
  EXPECT_EQ(winfo.resident_bytes_estimate(),
            (static_cast<std::uint64_t>(wg.num_vertices()) + 1) * 8 +
                static_cast<std::uint64_t>(wg.topology().num_arcs()) * 12);
}

// --- degree-descending placement -------------------------------------------

TEST(Placement, DegreeDescendingPermutationRanksByDegree) {
  const CsrGraph g = generators::star(8);  // hub degree 7, leaves degree 1
  const std::vector<vertex_t> new_of_old = io::degree_descending_permutation(g);
  ASSERT_EQ(new_of_old.size(), g.num_vertices());
  EXPECT_EQ(new_of_old[0], 0u);  // the hub wins rank 0
  // Leaves are degree ties broken by ascending old id.
  for (vertex_t v = 1; v < g.num_vertices(); ++v) {
    EXPECT_EQ(new_of_old[v], v);
  }
}

TEST(Placement, ApplyVertexPermutationPreservesStructure) {
  const CsrGraph g = generators::rmat(7, 4.0, 5);
  const std::vector<vertex_t> perm = io::degree_descending_permutation(g);
  const CsrGraph relabeled = io::apply_vertex_permutation(g, perm);
  ASSERT_EQ(relabeled.num_vertices(), g.num_vertices());
  ASSERT_EQ(relabeled.num_arcs(), g.num_arcs());
  // Degrees are carried by the relabeling and end up non-increasing.
  for (vertex_t old = 0; old < g.num_vertices(); ++old) {
    EXPECT_EQ(relabeled.degree(perm[old]), g.degree(old));
  }
  for (vertex_t nv = 1; nv < relabeled.num_vertices(); ++nv) {
    EXPECT_LE(relabeled.degree(nv), relabeled.degree(nv - 1));
  }
  // Edge sets map exactly: {u, v} in g iff {perm[u], perm[v]} relabeled.
  for (vertex_t u = 0; u < g.num_vertices(); ++u) {
    const auto want = g.neighbors(u);
    std::vector<vertex_t> mapped;
    mapped.reserve(want.size());
    for (const vertex_t v : want) mapped.push_back(perm[v]);
    std::sort(mapped.begin(), mapped.end());
    const auto got = relabeled.neighbors(perm[u]);
    ASSERT_TRUE(std::equal(got.begin(), got.end(), mapped.begin(),
                           mapped.end()))
        << "u=" << u;
  }
}

TEST(Placement, RejectsNonPermutations) {
  const CsrGraph g = generators::path(4);
  const std::vector<vertex_t> too_short = {0, 1, 2};
  EXPECT_THROW((void)io::apply_vertex_permutation(g, too_short),
               std::invalid_argument);
  const std::vector<vertex_t> duplicate = {0, 1, 1, 3};
  EXPECT_THROW((void)io::apply_vertex_permutation(g, duplicate),
               std::invalid_argument);
  const std::vector<vertex_t> out_of_range = {0, 1, 2, 4};
  EXPECT_THROW((void)io::apply_vertex_permutation(g, out_of_range),
               std::invalid_argument);
}

TEST(Placement, SaveSnapshotWithPlacementWritesRelabeledGraph) {
  TempDir tmp("paged");
  const CsrGraph g = generators::star(32);
  const std::string path = tmp.file("placed.mpxs");
  io::SnapshotWriteOptions options;
  options.tier = io::SnapshotTier::kCold;
  options.block_size = 8;
  options.placement = io::SnapshotPlacement::kDegreeDescending;
  io::save_snapshot(path, g, options);
  const CsrGraph loaded = io::load_snapshot(path);
  const CsrGraph want =
      io::apply_vertex_permutation(g, io::degree_descending_permutation(g));
  ASSERT_EQ(loaded.num_vertices(), want.num_vertices());
  EXPECT_TRUE(std::equal(loaded.offsets().begin(), loaded.offsets().end(),
                         want.offsets().begin()));
  EXPECT_TRUE(std::equal(loaded.targets().begin(), loaded.targets().end(),
                         want.targets().begin()));
  // The hub's adjacency now fills the leading blocks.
  EXPECT_EQ(loaded.degree(0), g.num_vertices() - 1);
}

TEST(Placement, WeightedPermutationCarriesWeights) {
  const WeightedCsrGraph g = mpx::testing::grid3x3_weighted_reference();
  const std::vector<vertex_t> perm =
      io::degree_descending_permutation(g.topology());
  const WeightedCsrGraph relabeled = io::apply_vertex_permutation(g, perm);
  for (vertex_t u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.topology().neighbors(u);
    const auto weights = g.arc_weights(u);
    const auto new_nbrs = relabeled.topology().neighbors(perm[u]);
    const auto new_weights = relabeled.arc_weights(perm[u]);
    ASSERT_EQ(new_nbrs.size(), nbrs.size());
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      // Find edge (perm[u], perm[nbrs[i]]) and check its weight rode along.
      const vertex_t target = perm[nbrs[i]];
      const auto it =
          std::lower_bound(new_nbrs.begin(), new_nbrs.end(), target);
      ASSERT_TRUE(it != new_nbrs.end() && *it == target);
      EXPECT_EQ(new_weights[static_cast<std::size_t>(it - new_nbrs.begin())],
                weights[i]);
    }
  }
}

}  // namespace
}  // namespace mpx
