// Tests for the observability subsystem (src/obs/): the log-bucketed
// latency histogram's bucket scheme (monotone, invertible, 1/16 relative
// error), quantiles checked against exact sorted samples over the seeded
// corpus, merge associativity/commutativity, the registry's stable-
// reference contract, the cross-thread record hammer (the TSan job runs
// this), the session-telemetry bridge, and the trace recorder's bounded
// ring + Chrome trace-event JSON export.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/session.hpp"
#include "core/telemetry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/property.hpp"
#include "support/random.hpp"

namespace mpx::obs {
namespace {

// --- bucket scheme ---------------------------------------------------------

TEST(ObsHistogram, BucketIndexIsExactBelowSubBucketCount) {
  for (std::uint64_t v = 0; v < kHistogramSubBuckets; ++v) {
    EXPECT_EQ(histogram_bucket_index(v), v);
    EXPECT_EQ(histogram_bucket_lower(static_cast<std::size_t>(v)), v);
    EXPECT_EQ(histogram_bucket_upper(static_cast<std::size_t>(v)), v);
  }
}

TEST(ObsHistogram, BucketBoundsInvertTheIndex) {
  for (std::size_t i = 0; i < kHistogramBucketCount; ++i) {
    SCOPED_TRACE("bucket=" + std::to_string(i));
    const std::uint64_t lower = histogram_bucket_lower(i);
    const std::uint64_t upper = histogram_bucket_upper(i);
    ASSERT_LE(lower, upper);
    EXPECT_EQ(histogram_bucket_index(lower), i);
    EXPECT_EQ(histogram_bucket_index(upper), i);
    if (i + 1 < kHistogramBucketCount) {
      // Buckets tile the u64 range with no gaps and no overlap.
      EXPECT_EQ(histogram_bucket_lower(i + 1), upper + 1);
    }
  }
  EXPECT_EQ(histogram_bucket_index(~0ull), kHistogramBucketCount - 1);
}

TEST(ObsHistogram, BucketIndexIsMonotone) {
  testing::for_each_seed(8, [](std::uint64_t seed) {
    Xoshiro256pp rng(seed);
    for (int i = 0; i < 2000; ++i) {
      // Mixed magnitudes: shift a raw draw by a random amount.
      const std::uint64_t a = rng() >> rng.next_below(64);
      const std::uint64_t b = rng() >> rng.next_below(64);
      const std::uint64_t lo = std::min(a, b);
      const std::uint64_t hi = std::max(a, b);
      EXPECT_LE(histogram_bucket_index(lo), histogram_bucket_index(hi));
    }
  });
}

TEST(ObsHistogram, BucketWidthIsWithinOneSixteenthOfTheValue) {
  // The documented accuracy contract: every value >= 16 lands in a bucket
  // whose width is at most lower/16, so any in-bucket answer is within
  // +6.25% of the truth.
  testing::for_each_seed(8, [](std::uint64_t seed) {
    Xoshiro256pp rng(seed);
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t v = rng() >> rng.next_below(64);
      if (v < kHistogramSubBuckets) continue;
      const std::size_t idx = histogram_bucket_index(v);
      const std::uint64_t lower = histogram_bucket_lower(idx);
      const std::uint64_t width =
          histogram_bucket_upper(idx) - lower + 1;
      EXPECT_LE(width * kHistogramSubBuckets, lower + kHistogramSubBuckets);
    }
  });
}

// --- recording and quantiles -----------------------------------------------

TEST(ObsHistogram, EmptyHistogramIsAllZero) {
  LatencyHistogram h;
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_TRUE(s.buckets.empty());
  EXPECT_EQ(s.quantile(0.5), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(ObsHistogram, SingleSampleQuantilesClampToTheExactMax) {
  LatencyHistogram h;
  h.record(123456789);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.sum, 123456789u);
  EXPECT_EQ(s.max, 123456789u);
  ASSERT_EQ(s.buckets.size(), 1u);
  // Every quantile of a one-sample distribution is that sample: the
  // bucket upper bound is clamped to the recorded max, which is exact.
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    SCOPED_TRACE("q=" + std::to_string(q));
    EXPECT_EQ(s.quantile(q), 123456789u);
  }
}

TEST(ObsHistogram, RecordSecondsClampsNegativeToZero) {
  LatencyHistogram h;
  h.record_seconds(-1.0);
  h.record_seconds(0.5);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.quantile(0.0), 0u);  // the clamped sample
  EXPECT_EQ(s.max, 500'000'000u);  // 0.5s in ns
}

TEST(ObsHistogram, QuantilesStayWithinTheBucketErrorBoundOfExact) {
  testing::for_each_seed(12, [](std::uint64_t seed) {
    Xoshiro256pp rng(seed);
    const std::size_t n = 1 + rng.next_below(3000);
    LatencyHistogram h;
    std::vector<std::uint64_t> exact;
    exact.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t v = rng() >> rng.next_below(64);
      h.record(v);
      exact.push_back(v);
    }
    std::sort(exact.begin(), exact.end());
    const HistogramSnapshot s = h.snapshot();
    ASSERT_EQ(s.count, n);
    EXPECT_EQ(s.max, exact.back());
    for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
      SCOPED_TRACE("q=" + std::to_string(q));
      const std::size_t rank = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::ceil(q * static_cast<double>(n))));
      const std::uint64_t truth = exact[rank - 1];
      const std::uint64_t approx = s.quantile(q);
      // The answer is an upper bound on the exact order statistic, and
      // over-reports by at most one bucket width (<= truth/16 + 1).
      // Checked as a difference: `truth + truth/16` overflows u64 for
      // samples near 2^64, which this distribution does produce.
      ASSERT_GE(approx, truth);
      EXPECT_LE(approx - truth, truth / kHistogramSubBuckets + 1);
    }
  });
}

TEST(ObsHistogram, MergeIsAssociativeCommutativeAndLossless) {
  testing::for_each_seed(8, [](std::uint64_t seed) {
    Xoshiro256pp rng(seed);
    LatencyHistogram parts[3];
    LatencyHistogram combined;
    for (int p = 0; p < 3; ++p) {
      const std::size_t n = rng.next_below(500);
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t v = rng() >> rng.next_below(64);
        parts[p].record(v);
        combined.record(v);
      }
    }
    const HistogramSnapshot a = parts[0].snapshot();
    const HistogramSnapshot b = parts[1].snapshot();
    const HistogramSnapshot c = parts[2].snapshot();

    HistogramSnapshot ab_c = a;
    ab_c.merge(b);
    ab_c.merge(c);
    HistogramSnapshot bc = b;
    bc.merge(c);
    HistogramSnapshot a_bc = a;
    a_bc.merge(bc);
    EXPECT_EQ(ab_c, a_bc);

    HistogramSnapshot ba = b;
    ba.merge(a);
    HistogramSnapshot ab = a;
    ab.merge(b);
    EXPECT_EQ(ab, ba);

    // Merging worker-local histograms loses nothing: the result is
    // bucket-for-bucket what one shared histogram would have recorded.
    EXPECT_EQ(ab_c, combined.snapshot());
  });
}

TEST(ObsHistogram, MergeWithEmptyIsIdentity) {
  LatencyHistogram h;
  h.record(42);
  h.record(1u << 20);
  const HistogramSnapshot s = h.snapshot();
  HistogramSnapshot left = s;
  left.merge(HistogramSnapshot{});
  EXPECT_EQ(left, s);
  HistogramSnapshot right;
  right.merge(s);
  EXPECT_EQ(right, s);
}

TEST(ObsHistogram, ConcurrentRecordsAreNotLost) {
  // The TSan job runs this: 4 writers hammer one histogram while a
  // reader snapshots mid-flight; totals must be exact afterwards.
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 50'000;
  LatencyHistogram h;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&h, &go, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record(i << (t * 8));  // distinct magnitude band per thread
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Concurrent snapshots must observe monotone, never-overshooting counts.
  std::uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    const HistogramSnapshot mid = h.snapshot();
    EXPECT_GE(mid.count, last);
    EXPECT_LE(mid.count, kThreads * kPerThread);
    last = mid.count;
  }
  for (std::thread& w : writers) w.join();
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const HistogramBucket& b : s.buckets) bucket_total += b.count;
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
  EXPECT_EQ(s.max, (kPerThread - 1) << ((kThreads - 1) * 8));
}

// --- registry ---------------------------------------------------------------

TEST(ObsRegistry, InstrumentsAreStableSingletonsByName) {
  MetricsRegistry registry;
  Counter& c1 = registry.counter("requests");
  Counter& c2 = registry.counter("requests");
  EXPECT_EQ(&c1, &c2);
  LatencyHistogram& h1 = registry.histogram("latency");
  LatencyHistogram& h2 = registry.histogram("latency");
  EXPECT_EQ(&h1, &h2);
  Gauge& g1 = registry.gauge("depth");
  Gauge& g2 = registry.gauge("depth");
  EXPECT_EQ(&g1, &g2);
  // Sections are independent namespaces.
  c1.add(3);
  g1.set(-7);
  h1.record(100);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_or("requests"), 3u);
  EXPECT_EQ(snap.gauge_or("depth"), -7);
  ASSERT_NE(snap.histogram("latency"), nullptr);
  EXPECT_EQ(snap.histogram("latency")->count, 1u);
}

TEST(ObsRegistry, SnapshotIsNameSortedPerSection) {
  MetricsRegistry registry;
  registry.counter("zeta").add(1);
  registry.counter("alpha").add(2);
  registry.counter("mid").add(3);
  registry.histogram("b").record(1);
  registry.histogram("a").record(2);
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[1].name, "mid");
  EXPECT_EQ(snap.counters[2].name, "zeta");
  ASSERT_EQ(snap.histograms.size(), 2u);
  EXPECT_EQ(snap.histograms[0].name, "a");
  EXPECT_EQ(snap.histograms[1].name, "b");
}

TEST(ObsRegistry, RejectsUnencodableNames) {
  MetricsRegistry registry;
  EXPECT_THROW((void)registry.counter(""), std::invalid_argument);
  EXPECT_THROW((void)registry.histogram(std::string(256, 'x')),
               std::invalid_argument);
  // The longest legal name is fine.
  EXPECT_NO_THROW((void)registry.gauge(std::string(255, 'y')));
}

TEST(ObsRegistry, MissingLookupsFallBack) {
  const MetricsSnapshot empty;
  EXPECT_EQ(empty.histogram("nope"), nullptr);
  EXPECT_EQ(empty.counter_or("nope", 17u), 17u);
  EXPECT_EQ(empty.gauge_or("nope", -4), -4);
}

// --- session-telemetry bridge ----------------------------------------------

TEST(ObsRegistry, RunTelemetryFeedsTheDecompMetrics) {
  RunTelemetry t;
  t.rounds = 5;
  t.arcs_scanned = 1234;
  t.shift_draw_seconds = 0.001;
  t.shift_rank_seconds = 0.002;
  t.shift_seconds = 0.003;
  t.search_seconds = 0.25;
  t.assemble_seconds = 0.01;
  t.total_seconds = 0.27;
  MetricsRegistry registry;
  record_run_telemetry(registry, t);
  record_run_telemetry(registry, t);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_or("decomp.computes"), 2u);
  EXPECT_EQ(snap.counter_or("decomp.rounds"), 10u);
  EXPECT_EQ(snap.counter_or("decomp.arcs_scanned"), 2468u);
  for (const char* name :
       {"decomp.shift_draw", "decomp.shift_rank", "decomp.shift",
        "decomp.search", "decomp.assemble", "decomp.total"}) {
    SCOPED_TRACE(name);
    const HistogramSnapshot* h = snap.histogram(name);
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 2u);
  }
  // ~0.25s in ns, within the bucket error bound.
  const HistogramSnapshot* search = snap.histogram("decomp.search");
  EXPECT_GE(search->max, 250'000'000u - 250'000'000u / 16);
  EXPECT_LE(search->max, 250'000'000u + 250'000'000u / 16);
}

// --- trace recorder ---------------------------------------------------------

TEST(ObsTrace, RingKeepsTheNewestSpansOldestFirst) {
  TraceRecorder recorder(8);
  for (std::uint32_t i = 0; i < 20; ++i) {
    recorder.record(TraceSpan{"span", "test", i, i * 100, 50});
  }
  EXPECT_EQ(recorder.recorded(), 20u);
  EXPECT_EQ(recorder.dropped(), 12u);
  const std::vector<TraceSpan> spans = recorder.spans();
  ASSERT_EQ(spans.size(), 8u);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].tid, 12u + i);  // 12..19 survive, in order
  }
}

TEST(ObsTrace, RecordSinceMeasuresForward) {
  TraceRecorder recorder;
  const std::uint64_t start = recorder.now_ns();
  recorder.record_since("wait", "test", 7, start);
  const std::vector<TraceSpan> spans = recorder.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].start_ns, start);
  EXPECT_LE(spans[0].start_ns + spans[0].duration_ns, recorder.now_ns());
}

TEST(ObsTrace, ChromeTraceExportIsWellFormed) {
  TraceRecorder recorder(16);
  recorder.record(TraceSpan{"service.query", "server", 1, 1000, 2500});
  recorder.record(TraceSpan{"queue_wait", "server", 9, 500, 499});
  recorder.record(TraceSpan{"we\"ird\\name", "test", 2, 0, 1});
  std::ostringstream out;
  recorder.write_chrome_trace(out);
  const std::string json = out.str();
  // Trace Event Format essentials: the event array, complete-event
  // phases, microsecond timestamps, and drop accounting.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"service.query\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);  // 1000ns = 1µs
  EXPECT_NE(json.find("\"dur\":2.500"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":9"), std::string::npos);
  EXPECT_NE(json.find("\"recorded\":3"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
  // The quote and backslash in the span name arrive escaped.
  EXPECT_NE(json.find("we\\\"ird\\\\name"), std::string::npos);
  // Balanced structure, no raw control bytes.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_EQ(json.back(), '\n');
}

TEST(ObsTrace, PathExportReportsUnwritablePaths) {
  TraceRecorder recorder;
  recorder.record(TraceSpan{"a", "b", 0, 0, 1});
  EXPECT_FALSE(
      recorder.write_chrome_trace("/nonexistent-dir/trace.json"));
}

}  // namespace
}  // namespace mpx::obs
