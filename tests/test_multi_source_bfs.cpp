// Tests for the delayed-start multi-source BFS — the engine of
// Algorithm 1. Covers start scheduling, rank tie-breaking, truncation,
// determinism across thread counts, and the work bound.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "support/random.hpp"
#include "bfs/multi_source_bfs.hpp"
#include "bfs/sequential_bfs.hpp"
#include "graph/generators.hpp"
#include "parallel/thread_env.hpp"

namespace mpx {
namespace {

using namespace mpx::generators;

/// All vertices start at round 0 with rank = id: a plain multi-source
/// Voronoi with lexicographic ties.
MultiSourceBfsResult voronoi_all(const CsrGraph& g) {
  const vertex_t n = g.num_vertices();
  std::vector<std::uint32_t> start(n, 0);
  std::vector<std::uint32_t> rank(n);
  std::iota(rank.begin(), rank.end(), 0u);
  return delayed_multi_source_bfs(g, start, rank);
}

TEST(DelayedBfs, AllZeroStartsMakeEveryVertexItsOwnCenter) {
  const CsrGraph g = grid2d(4, 4);
  const MultiSourceBfsResult r = voronoi_all(g);
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(r.owner[v], v);
    EXPECT_EQ(r.settle_round[v], 0u);
  }
  // Round 0 settles everyone; round 1 expands and finds nothing new.
  EXPECT_EQ(r.rounds, 2u);
}

TEST(DelayedBfs, SingleCenterIsPlainBfs) {
  const CsrGraph g = grid2d(9, 11);
  const vertex_t n = g.num_vertices();
  std::vector<std::uint32_t> start(n, kNoStart);
  std::vector<std::uint32_t> rank(n, 0);
  start[0] = 0;
  const MultiSourceBfsResult r = delayed_multi_source_bfs(g, start, rank);
  const auto expected = bfs_distances(g, 0);
  for (vertex_t v = 0; v < n; ++v) {
    EXPECT_EQ(r.owner[v], 0u);
    EXPECT_EQ(r.settle_round[v], expected[v]);
    EXPECT_EQ(r.dist_to_owner(v, start), expected[v]);
  }
}

TEST(DelayedBfs, TwoCentersSplitAPathByDistance) {
  const CsrGraph g = path(10);
  std::vector<std::uint32_t> start(10, kNoStart);
  std::vector<std::uint32_t> rank(10, 0);
  start[0] = 0;
  rank[0] = 0;
  start[9] = 0;
  rank[9] = 1;
  const MultiSourceBfsResult r = delayed_multi_source_bfs(g, start, rank);
  // Vertices 0..4 are closer to 0; vertex 4 and 5 are distance 4 from both
  // ends? dist(0,4)=4 < dist(9,4)=5, dist(0,5)=5 > dist(9,5)=4.
  for (vertex_t v = 0; v <= 4; ++v) EXPECT_EQ(r.owner[v], 0u) << v;
  for (vertex_t v = 5; v <= 9; ++v) EXPECT_EQ(r.owner[v], 9u) << v;
}

TEST(DelayedBfs, RankBreaksEquidistantTies) {
  const CsrGraph g = path(9);  // middle vertex 4 equidistant from 0 and 8
  std::vector<std::uint32_t> start(9, kNoStart);
  std::vector<std::uint32_t> rank(9, 0);
  start[0] = 0;
  start[8] = 0;
  rank[0] = 1;
  rank[8] = 0;  // 8 wins ties
  const MultiSourceBfsResult r = delayed_multi_source_bfs(g, start, rank);
  EXPECT_EQ(r.owner[4], 8u);

  rank[0] = 0;
  rank[8] = 1;  // now 0 wins ties
  const MultiSourceBfsResult r2 = delayed_multi_source_bfs(g, start, rank);
  EXPECT_EQ(r2.owner[4], 0u);
}

TEST(DelayedBfs, DelayedCenterLosesGroundProportionally) {
  const CsrGraph g = path(11);
  std::vector<std::uint32_t> start(11, kNoStart);
  std::vector<std::uint32_t> rank(11, 0);
  start[0] = 0;
  rank[0] = 0;
  start[10] = 4;  // handicapped by 4 rounds
  rank[10] = 1;
  const MultiSourceBfsResult r = delayed_multi_source_bfs(g, start, rank);
  // Vertex v is owned by 0 iff dist(0,v) < 4 + dist(10,v), i.e. v < (10+4)/2=7.
  for (vertex_t v = 0; v <= 6; ++v) EXPECT_EQ(r.owner[v], 0u) << v;
  for (vertex_t v = 8; v <= 10; ++v) EXPECT_EQ(r.owner[v], 10u) << v;
  // v = 7: dist(0,7)=7 = 4+dist(10,7)=4+3 -> tie, rank 0 wins.
  EXPECT_EQ(r.owner[7], 0u);
}

TEST(DelayedBfs, LateCenterNeverStartsIfAlreadyClaimed) {
  const CsrGraph g = path(5);
  std::vector<std::uint32_t> start(5, kNoStart);
  std::vector<std::uint32_t> rank(5, 0);
  start[0] = 0;
  rank[0] = 0;
  start[2] = 10;  // would start at round 10, but is claimed at round 2
  rank[2] = 1;
  const MultiSourceBfsResult r = delayed_multi_source_bfs(g, start, rank);
  for (vertex_t v = 0; v < 5; ++v) EXPECT_EQ(r.owner[v], 0u);
}

TEST(DelayedBfs, SettleRoundIsStartPlusDistance) {
  const CsrGraph g = grid2d(8, 8);
  const vertex_t n = g.num_vertices();
  std::vector<std::uint32_t> start(n, kNoStart);
  std::vector<std::uint32_t> rank(n, 0);
  start[0] = 3;
  const MultiSourceBfsResult r = delayed_multi_source_bfs(g, start, rank);
  const auto d = bfs_distances(g, 0);
  for (vertex_t v = 0; v < n; ++v) {
    EXPECT_EQ(r.settle_round[v], 3 + d[v]);
  }
}

TEST(DelayedBfs, MaxRoundsTruncatesTheSearch) {
  const CsrGraph g = path(20);
  std::vector<std::uint32_t> start(20, kNoStart);
  std::vector<std::uint32_t> rank(20, 0);
  start[0] = 0;
  const MultiSourceBfsResult r =
      delayed_multi_source_bfs(g, start, rank, /*max_rounds=*/5);
  for (vertex_t v = 0; v < 20; ++v) {
    if (v <= 4) {
      EXPECT_EQ(r.owner[v], 0u);
    } else {
      EXPECT_EQ(r.owner[v], kInvalidVertex);
      EXPECT_EQ(r.settle_round[v], kInfDist);
    }
  }
  EXPECT_LE(r.rounds, 5u);
}

TEST(DelayedBfs, NoCentersMeansNothingSettles) {
  const CsrGraph g = path(5);
  std::vector<std::uint32_t> start(5, kNoStart);
  std::vector<std::uint32_t> rank(5, 0);
  const MultiSourceBfsResult r = delayed_multi_source_bfs(g, start, rank);
  for (vertex_t v = 0; v < 5; ++v) EXPECT_EQ(r.owner[v], kInvalidVertex);
  EXPECT_EQ(r.rounds, 0u);
}

TEST(DelayedBfs, OwnersAreAlwaysSelfOwned) {
  // Property: anyone who owns others owns itself (Lemma 4.1 closure).
  const CsrGraph g = erdos_renyi(300, 800, 5);
  const vertex_t n = g.num_vertices();
  std::vector<std::uint32_t> start(n);
  std::vector<std::uint32_t> rank(n);
  std::iota(rank.begin(), rank.end(), 0u);
  for (vertex_t v = 0; v < n; ++v) {
    start[v] = static_cast<std::uint32_t>(hash_stream(1, v) % 7);
  }
  const MultiSourceBfsResult r = delayed_multi_source_bfs(g, start, rank);
  for (vertex_t v = 0; v < n; ++v) {
    ASSERT_NE(r.owner[v], kInvalidVertex);
    EXPECT_EQ(r.owner[r.owner[v]], r.owner[v]);
  }
}

TEST(DelayedBfs, DeterministicAcrossThreadCounts) {
  const CsrGraph g = rmat(9, 5.0, 21);
  const vertex_t n = g.num_vertices();
  std::vector<std::uint32_t> start(n);
  std::vector<std::uint32_t> rank(n);
  std::iota(rank.begin(), rank.end(), 0u);
  for (vertex_t v = 0; v < n; ++v) {
    start[v] = static_cast<std::uint32_t>(hash_stream(2, v) % 10);
  }
  std::vector<vertex_t> owner_one;
  std::vector<vertex_t> owner_max;
  {
    ScopedNumThreads guard(1);
    owner_one = delayed_multi_source_bfs(g, start, rank).owner;
  }
  {
    ScopedNumThreads guard(max_threads());
    owner_max = delayed_multi_source_bfs(g, start, rank).owner;
  }
  EXPECT_EQ(owner_one, owner_max);
}

TEST(DelayedBfs, WorkIsLinearInArcs) {
  const CsrGraph g = grid2d(50, 50);
  const MultiSourceBfsResult r = voronoi_all(g);
  // Every vertex settles once and is expanded once: arcs scanned == 2m,
  // exactly — the counter is folded into the parallel expand phase but
  // must stay exact.
  EXPECT_EQ(r.arcs_scanned, g.num_arcs());
}

TEST(DelayedBfs, ArcsScannedExactAndEngineInvariant) {
  // Partial coverage (some vertices unreached via max_rounds): the counter
  // equals the settled vertices' degree sum for every engine.
  const CsrGraph g = grid2d(24, 24);
  const vertex_t n = g.num_vertices();
  std::vector<std::uint32_t> start(n, kNoStart);
  std::vector<std::uint32_t> rank(n, 0);
  start[0] = 0;
  start[n - 1] = 2;
  rank[n - 1] = 1;
  for (const TraversalEngine engine :
       {TraversalEngine::kPush, TraversalEngine::kPull,
        TraversalEngine::kAuto}) {
    SCOPED_TRACE(std::string(traversal_engine_name(engine)));
    const MultiSourceBfsResult r =
        delayed_multi_source_bfs(g, start, rank, /*max_rounds=*/9, engine);
    edge_t settled_degree = 0;
    for (vertex_t v = 0; v < n; ++v) {
      if (r.owner[v] != kInvalidVertex) {
        settled_degree += static_cast<edge_t>(g.degree(v));
      }
    }
    // Truncation stops before the last frontier expands, so the counter
    // covers exactly the frontiers that did expand: every settled vertex
    // except those still waiting in the final frontier.
    EXPECT_LE(r.arcs_scanned, settled_degree);
    const MultiSourceBfsResult full =
        delayed_multi_source_bfs(g, start, rank, kInfDist, engine);
    edge_t full_degree = 0;
    for (vertex_t v = 0; v < n; ++v) {
      if (full.owner[v] != kInvalidVertex) {
        full_degree += static_cast<edge_t>(g.degree(v));
      }
    }
    EXPECT_EQ(full.arcs_scanned, full_degree);
  }
}

TEST(DelayedBfs, DisconnectedComponentsEachGetOwners) {
  const CsrGraph g = disjoint_copies(cycle(6), 3);
  const vertex_t n = g.num_vertices();
  std::vector<std::uint32_t> start(n);
  std::vector<std::uint32_t> rank(n);
  std::iota(rank.begin(), rank.end(), 0u);
  for (vertex_t v = 0; v < n; ++v) {
    start[v] = static_cast<std::uint32_t>(hash_stream(3, v) % 5);
  }
  const MultiSourceBfsResult r = delayed_multi_source_bfs(g, start, rank);
  for (vertex_t v = 0; v < n; ++v) {
    ASSERT_NE(r.owner[v], kInvalidVertex);
    // Owner must live in the same component (same cycle of 6).
    EXPECT_EQ(r.owner[v] / 6, v / 6);
  }
}

}  // namespace
}  // namespace mpx
