// Tests for the conductance metric and the decomposition-based sparse-cut
// heuristic.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/conductance.hpp"
#include "core/partition.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace mpx {
namespace {

using namespace mpx::generators;

TEST(Conductance, HandComputedValues) {
  // Path 0-1-2-3: split {0,1} vs {2,3}: cut 1, vol {0,1} = 1+2 = 3,
  // vol {2,3} = 2+1 = 3 -> phi = 1/3.
  const CsrGraph g = path(4);
  const std::vector<std::uint8_t> half = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(conductance(g, half), 1.0 / 3.0);

  // Singleton {0}: cut 1, vol 1 -> phi = 1.
  const std::vector<std::uint8_t> single = {1, 0, 0, 0};
  EXPECT_DOUBLE_EQ(conductance(g, single), 1.0);
}

TEST(Conductance, SymmetricInComplement) {
  const CsrGraph g = grid2d(6, 6);
  std::vector<std::uint8_t> in_set(g.num_vertices(), 0);
  for (vertex_t v = 0; v < g.num_vertices() / 3; ++v) in_set[v] = 1;
  std::vector<std::uint8_t> complement(g.num_vertices());
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    complement[v] = in_set[v] ? 0 : 1;
  }
  EXPECT_DOUBLE_EQ(conductance(g, in_set), conductance(g, complement));
}

TEST(Conductance, EmptyAndFullSidesAreInfinite) {
  const CsrGraph g = cycle(8);
  const std::vector<std::uint8_t> none(8, 0);
  const std::vector<std::uint8_t> all(8, 1);
  EXPECT_TRUE(std::isinf(conductance(g, none)));
  EXPECT_TRUE(std::isinf(conductance(g, all)));
}

TEST(Conductance, PieceConductanceMatchesIndicatorForm) {
  const CsrGraph g = grid2d(10, 10);
  PartitionOptions opt;
  opt.beta = 0.3;
  opt.seed = 5;
  const Decomposition dec = partition(g, opt);
  ASSERT_GE(dec.num_clusters(), 2u);
  for (cluster_t c = 0; c < std::min<cluster_t>(dec.num_clusters(), 5); ++c) {
    std::vector<std::uint8_t> in_set(g.num_vertices(), 0);
    for (vertex_t v = 0; v < g.num_vertices(); ++v) {
      if (dec.cluster_of(v) == c) in_set[v] = 1;
    }
    EXPECT_DOUBLE_EQ(piece_conductance(g, dec, c), conductance(g, in_set));
  }
}

TEST(SparseCut, FindsTheBarbellBridge) {
  // The barbell's unique sparse cut is the bridge: phi = 1 / (k(k-1)+1).
  // Pieces equal to one bell appear in roughly a third of partitions at
  // beta >= 0.3, so a modest trial budget finds the cut w.h.p.
  const vertex_t k = 12;
  const CsrGraph g = barbell(k);
  SparseCutOptions opt;
  opt.seed = 3;
  opt.betas = {0.2, 0.3, 0.5};
  opt.trials_per_beta = 10;
  const SparseCutResult r = best_piece_cut(g, opt);
  const double bridge_phi =
      1.0 / (static_cast<double>(k) * (k - 1) + 1.0);
  EXPECT_LE(r.conductance_value, 2.0 * bridge_phi);
  // The winning side is (close to) one bell.
  EXPECT_GE(r.set_size, k - 2);
  EXPECT_LE(r.set_size, k + 2);
}

TEST(SparseCut, DumbbellGridBeatsArbitraryCuts) {
  // Two grids joined by one edge.
  const CsrGraph block = grid2d(8, 8);
  std::vector<Edge> edges = edge_list(disjoint_copies(block, 2));
  edges.push_back({63, 64});
  const CsrGraph g = build_undirected(128, std::span<const Edge>(edges));
  SparseCutOptions opt;
  opt.seed = 7;
  const SparseCutResult r = best_piece_cut(g, opt);
  // The bridge cut has phi = 1/225; the heuristic should land well under
  // a generic grid cut (~1/16).
  EXPECT_LT(r.conductance_value, 0.03);
}

TEST(SparseCut, ExpanderHasNoSparseCut) {
  const CsrGraph g = random_matching_union(512, 6, 9);
  SparseCutOptions opt;
  opt.seed = 1;
  const SparseCutResult r = best_piece_cut(g, opt);
  // Expanders have conductance bounded below by a constant.
  EXPECT_GT(r.conductance_value, 0.05);
}

TEST(SparseCut, DeterministicInSeed) {
  const CsrGraph g = barbell(8);
  SparseCutOptions opt;
  opt.seed = 11;
  const SparseCutResult a = best_piece_cut(g, opt);
  const SparseCutResult b = best_piece_cut(g, opt);
  EXPECT_EQ(a.in_set, b.in_set);
  EXPECT_DOUBLE_EQ(a.conductance_value, b.conductance_value);
}

}  // namespace
}  // namespace mpx
