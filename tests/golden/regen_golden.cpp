// Regenerates the checked-in golden files that pin the text formats of
// graph/io and core/decomposition_io. Run after a *deliberate* format
// change:
//   cmake --build build --target regen_golden && ./build/regen_golden
// Writes into the source tree (MPX_TEST_GOLDEN_DIR).
#include <iostream>
#include <string>

#include "core/decomposition_io.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/snapshot.hpp"
#include "tests/support/fixtures.hpp"
#include "viz/grid_render.hpp"

int main() {
  const std::string dir = MPX_TEST_GOLDEN_DIR;
  const mpx::CsrGraph g = mpx::generators::grid2d(3, 3);

  mpx::io::save_edge_list(dir + "/grid_3x3.edges", g);
  std::cout << "wrote " << dir << "/grid_3x3.edges\n";

  mpx::io::save_decomposition(
      dir + "/grid_3x3_reference.dec",
      mpx::testing::grid3x3_reference_decomposition());
  std::cout << "wrote " << dir << "/grid_3x3_reference.dec\n";

  // Binary snapshot goldens (docs/FORMATS.md). A format change here means
  // a version bump: update the spec and the test_snapshot expectations
  // before regenerating.
  mpx::io::save_snapshot(dir + "/grid_3x3.mpxs", g);
  std::cout << "wrote " << dir << "/grid_3x3.mpxs\n";

  mpx::io::save_snapshot(dir + "/grid_3x3_weighted.mpxs",
                         mpx::testing::grid3x3_weighted_reference());
  std::cout << "wrote " << dir << "/grid_3x3_weighted.mpxs\n";

  // Version-2 goldens, both tiers. The tiny block size on the cold files
  // forces multi-block layouts so the fixtures exercise the block index,
  // not just a degenerate single block.
  {
    mpx::io::SnapshotWriteOptions hot;
    hot.tier = mpx::io::SnapshotTier::kHot;
    mpx::io::save_snapshot(dir + "/grid_3x3_v2.mpxs", g, hot);
    std::cout << "wrote " << dir << "/grid_3x3_v2.mpxs\n";

    mpx::io::SnapshotWriteOptions cold;
    cold.tier = mpx::io::SnapshotTier::kCold;
    cold.block_size = 8;  // 24 arcs -> 3 blocks
    mpx::io::save_snapshot(dir + "/grid_3x3_v2_cold.mpxs", g, cold);
    std::cout << "wrote " << dir << "/grid_3x3_v2_cold.mpxs\n";

    mpx::io::save_snapshot(dir + "/grid_3x3_weighted_v2_cold.mpxs",
                           mpx::testing::grid3x3_weighted_reference(), cold);
    std::cout << "wrote " << dir << "/grid_3x3_weighted_v2_cold.mpxs\n";

    // A bigger multi-block fixture for the corruption sweeps: small enough
    // that a per-byte truncation sweep stays fast, big enough that block
    // boundaries, varint degrees and entropy payloads all appear.
    mpx::io::SnapshotWriteOptions cold64;
    cold64.tier = mpx::io::SnapshotTier::kCold;
    cold64.block_size = 64;
    mpx::io::save_snapshot(dir + "/grid_16x16_v2_cold.mpxs",
                           mpx::generators::grid2d(16, 16), cold64);
    std::cout << "wrote " << dir << "/grid_16x16_v2_cold.mpxs\n";
  }

  // Telemetry-block golden: the reference decomposition with the
  // hand-authored exactly-representable telemetry fixture.
  mpx::io::save_decomposition(dir + "/grid_3x3_telemetry.dec",
                              mpx::testing::grid3x3_reference_decomposition(),
                              mpx::testing::reference_telemetry());
  std::cout << "wrote " << dir << "/grid_3x3_telemetry.dec\n";

  // Viz pipeline golden: reference decomposition -> owner colors -> PPM.
  mpx::viz::render_grid_decomposition(
      mpx::testing::grid3x3_reference_decomposition(), 3, 3)
      .save_ppm(dir + "/grid_3x3_reference.ppm");
  std::cout << "wrote " << dir << "/grid_3x3_reference.ppm\n";
  return 0;
}
