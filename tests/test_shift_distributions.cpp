// Tests for the Section 5 shift-distribution variants: permutation
// quantiles and uniform shifts as alternatives to i.i.d. exponentials.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/metrics.hpp"
#include "core/partition.hpp"
#include "graph/generators.hpp"
#include "tests/support/invariants.hpp"

namespace mpx {
namespace {

using namespace mpx::generators;

PartitionOptions opts(double beta, std::uint64_t seed, ShiftDistribution d) {
  PartitionOptions o;
  o.beta = beta;
  o.seed = seed;
  o.distribution = d;
  return o;
}

TEST(PermutationQuantileShifts, SortedProfileIsDeterministic) {
  // Only the permutation is random: sorting the delta values gives the
  // same profile for every seed.
  const Shifts a = generate_shifts(
      1000, opts(0.1, 1, ShiftDistribution::kPermutationQuantile));
  const Shifts b = generate_shifts(
      1000, opts(0.1, 2, ShiftDistribution::kPermutationQuantile));
  std::vector<double> sa = a.delta;
  std::vector<double> sb = b.delta;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  EXPECT_EQ(sa, sb);
  EXPECT_NE(a.delta, b.delta);  // assignment differs
}

TEST(PermutationQuantileShifts, ValuesAreExpQuantiles) {
  const vertex_t n = 100;
  const Shifts s = generate_shifts(
      n, opts(0.5, 3, ShiftDistribution::kPermutationQuantile));
  std::vector<double> sorted = s.delta;
  std::sort(sorted.begin(), sorted.end());
  for (vertex_t p = 0; p < n; ++p) {
    const double u = (static_cast<double>(p) + 0.5) / n;
    EXPECT_NEAR(sorted[p], -std::log1p(-u) / 0.5, 1e-12);
  }
}

TEST(PermutationQuantileShifts, MaxTracksHarmonicBound) {
  // The top quantile is -ln(1/(2n))/beta = ln(2n)/beta ~ H_n/beta.
  const vertex_t n = 4096;
  const double beta = 0.05;
  const Shifts s = generate_shifts(
      n, opts(beta, 7, ShiftDistribution::kPermutationQuantile));
  EXPECT_NEAR(s.delta_max, std::log(2.0 * n) / beta,
              0.01 * std::log(2.0 * n) / beta);
}

TEST(UniformShifts, RangeIsLogOverBeta) {
  const vertex_t n = 2048;
  const double beta = 0.1;
  const Shifts s =
      generate_shifts(n, opts(beta, 5, ShiftDistribution::kUniform));
  const double range = std::log(static_cast<double>(n) + 1.0) / beta;
  for (const double d : s.delta) {
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, range);
  }
}

TEST(AlternativeDistributions, ProduceValidDecompositions) {
  const CsrGraph graphs[] = {grid2d(20, 20), erdos_renyi(300, 900, 3),
                             path(500)};
  for (const CsrGraph& g : graphs) {
    for (const ShiftDistribution d :
         {ShiftDistribution::kPermutationQuantile,
          ShiftDistribution::kUniform}) {
      for (std::uint64_t seed = 0; seed < 3; ++seed) {
        const Decomposition dec =
            partition(g, opts(0.15, seed, d));
        EXPECT_TRUE(mpx::testing::check_decomposition_invariants(dec, g))
            << "dist " << static_cast<int>(d) << " seed " << seed;
      }
    }
  }
}

TEST(AlternativeDistributions, QualityComparableToExponential) {
  // The Section 5 conjecture, executable: permutation-quantile shifts give
  // cut fractions within a constant of the exponential ones.
  const CsrGraph g = grid2d(50, 50);
  const double beta = 0.2;
  double exp_cut = 0.0;
  double quant_cut = 0.0;
  const int kSeeds = 8;
  for (int seed = 0; seed < kSeeds; ++seed) {
    exp_cut += analyze(partition(g, opts(beta, static_cast<std::uint64_t>(seed),
                                         ShiftDistribution::kExponential)),
                       g)
                   .cut_fraction;
    quant_cut +=
        analyze(partition(g, opts(beta, static_cast<std::uint64_t>(seed),
                                  ShiftDistribution::kPermutationQuantile)),
                g)
            .cut_fraction;
  }
  EXPECT_LT(quant_cut, 3.0 * exp_cut + 0.01 * kSeeds);
  EXPECT_LT(exp_cut, 3.0 * quant_cut + 0.01 * kSeeds);
}

TEST(AlternativeDistributions, RadiiRespectTheSameScale) {
  const CsrGraph g = grid2d(40, 40);
  const double beta = 0.1;
  const double bound = 3.0 * std::log(1600.0) / beta;
  for (const ShiftDistribution d :
       {ShiftDistribution::kPermutationQuantile,
        ShiftDistribution::kUniform}) {
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      const DecompositionStats s =
          analyze(partition(g, opts(beta, seed, d)), g);
      EXPECT_LE(static_cast<double>(s.max_radius), bound)
          << "dist " << static_cast<int>(d);
    }
  }
}

}  // namespace
}  // namespace mpx
