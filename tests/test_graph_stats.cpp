// Tests for degree statistics, eccentricity and diameter estimators.
#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"

namespace mpx {
namespace {

using namespace mpx::generators;

TEST(DegreeStats, PathGraph) {
  const DegreeStats s = degree_stats(path(10));
  EXPECT_EQ(s.min_degree, 1u);
  EXPECT_EQ(s.max_degree, 2u);
  EXPECT_DOUBLE_EQ(s.mean_degree, 18.0 / 10.0);
  EXPECT_EQ(s.isolated_vertices, 0u);
}

TEST(DegreeStats, CountsIsolatedVertices) {
  const std::vector<Edge> edges = {{0, 1}};
  const CsrGraph g = build_undirected(4, std::span<const Edge>(edges));
  const DegreeStats s = degree_stats(g);
  EXPECT_EQ(s.min_degree, 0u);
  EXPECT_EQ(s.isolated_vertices, 2u);
}

TEST(Eccentricity, PathEndpointsAndMiddle) {
  const CsrGraph g = path(9);
  EXPECT_EQ(eccentricity(g, 0), 8u);
  EXPECT_EQ(eccentricity(g, 4), 4u);
  EXPECT_EQ(eccentricity(g, 8), 8u);
}

TEST(Eccentricity, IgnoresOtherComponents) {
  const CsrGraph g = disjoint_copies(path(5), 2);
  EXPECT_EQ(eccentricity(g, 0), 4u);
}

TEST(ExactDiameter, KnownValues) {
  EXPECT_EQ(exact_diameter(path(10)), 9u);
  EXPECT_EQ(exact_diameter(cycle(10)), 5u);
  EXPECT_EQ(exact_diameter(cycle(11)), 5u);
  EXPECT_EQ(exact_diameter(complete(6)), 1u);
  EXPECT_EQ(exact_diameter(star(10)), 2u);
  EXPECT_EQ(exact_diameter(grid2d(4, 7)), 9u);
  EXPECT_EQ(exact_diameter(hypercube(4)), 4u);
}

TEST(ExactDiameter, TrivialGraphs) {
  const CsrGraph empty;
  EXPECT_EQ(exact_diameter(empty), 0u);
  EXPECT_EQ(exact_diameter(path(1)), 0u);
  EXPECT_EQ(exact_diameter(path(2)), 1u);
}

TEST(TwoSweep, ExactOnTrees) {
  EXPECT_EQ(two_sweep_diameter_lower_bound(path(33)), 32u);
  EXPECT_EQ(two_sweep_diameter_lower_bound(complete_binary_tree(31)),
            exact_diameter(complete_binary_tree(31)));
  EXPECT_EQ(two_sweep_diameter_lower_bound(caterpillar(10, 2)),
            exact_diameter(caterpillar(10, 2)));
}

TEST(TwoSweep, LowerBoundsExactDiameter) {
  // Connected graphs only: the sweep starts at vertex 0 and measures the
  // component containing it.
  const CsrGraph graphs[] = {grid2d(6, 9), cycle(21), hypercube(5),
                             caterpillar(12, 2), barbell(7)};
  for (const CsrGraph& g : graphs) {
    EXPECT_LE(two_sweep_diameter_lower_bound(g), exact_diameter(g));
    EXPECT_GE(2 * two_sweep_diameter_lower_bound(g), exact_diameter(g));
  }
}

}  // namespace
}  // namespace mpx
