// Tests for the unified decomposer facade (core/decomposer.hpp): request
// validation, the algorithm registry, and the contract the serving layer
// rests on — facade and legacy entry points produce byte-identical
// owner/settle output for fixed seeds, across every fixture family and at
// 1/2/8 threads, with and without a reused workspace, and with shifts
// derived from a precomputed basis.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "baselines/ball_growing.hpp"
#include "baselines/bgkmpt.hpp"
#include "core/bucketed_partition.hpp"
#include "core/decomposer.hpp"
#include "core/partition.hpp"
#include "core/weighted_partition.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "parallel/thread_env.hpp"
#include "tests/support/fixtures.hpp"
#include "tests/support/invariants.hpp"

namespace mpx {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

/// owner/settle arrays a legacy Decomposition implies.
std::pair<std::vector<vertex_t>, std::vector<std::uint32_t>> legacy_arrays(
    const Decomposition& dec) {
  std::vector<vertex_t> owner(dec.num_vertices());
  std::vector<std::uint32_t> settle(dec.num_vertices());
  for (vertex_t v = 0; v < dec.num_vertices(); ++v) {
    owner[v] = dec.center(dec.cluster_of(v));
    settle[v] = dec.dist_to_center(v);
  }
  return {std::move(owner), std::move(settle)};
}

TEST(Registry, ListsTheFiveAlgorithms) {
  const auto algorithms = registered_algorithms();
  ASSERT_EQ(algorithms.size(), 5u);
  EXPECT_EQ(algorithms.front().name, "mpx");
  for (const AlgorithmInfo& info : algorithms) {
    EXPECT_NE(find_algorithm(info.name), nullptr);
    EXPECT_FALSE(info.summary.empty());
  }
  EXPECT_TRUE(find_algorithm("mpx")->uses_shifts);
  EXPECT_FALSE(find_algorithm("mpx")->needs_weights);
  EXPECT_TRUE(find_algorithm("mpx-bucketed")->needs_weights);
  EXPECT_TRUE(find_algorithm("mpx-weighted")->needs_weights);
  EXPECT_FALSE(find_algorithm("ball-growing")->uses_shifts);
  EXPECT_EQ(find_algorithm("no-such-algorithm"), nullptr);
}

TEST(Validation, RejectsBetaOutsideUnitInterval) {
  const CsrGraph g = generators::path(4);
  for (const double beta :
       {0.0, -0.25, 1.0000001, 2.0, std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity()}) {
    SCOPED_TRACE("beta=" + std::to_string(beta));
    DecompositionRequest req;
    req.beta = beta;
    EXPECT_THROW((void)decompose(g, req), std::invalid_argument);
  }
  DecompositionRequest req;
  req.beta = 1.0;  // the closed upper end is legal
  EXPECT_NO_THROW((void)decompose(g, req));
}

TEST(Validation, RejectsNaNBeta) {
  const CsrGraph g = generators::path(4);
  DecompositionRequest req;
  req.beta = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((void)decompose(g, req), std::invalid_argument);

  // The legacy entry points share the facade boundary check.
  PartitionOptions opt;
  opt.beta = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((void)partition(g, opt), std::invalid_argument);
  const WeightedCsrGraph wg = with_unit_weights(g);
  EXPECT_THROW((void)weighted_partition(wg, opt), std::invalid_argument);
  EXPECT_THROW((void)bucketed_weighted_partition(wg, opt),
               std::invalid_argument);
  BallGrowingOptions bopt;
  bopt.beta = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((void)ball_growing_decomposition(g, bopt),
               std::invalid_argument);
  BgkmptOptions gopt;
  gopt.beta = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((void)bgkmpt_decomposition(g, gopt), std::invalid_argument);
}

TEST(Validation, RejectsUnknownAlgorithm) {
  const CsrGraph g = generators::path(4);
  DecompositionRequest req;
  req.algorithm = "definitely-not-registered";
  try {
    (void)decompose(g, req);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The error names the registry so callers can self-correct.
    EXPECT_NE(std::string(e.what()).find("mpx-bucketed"), std::string::npos);
  }
}

TEST(Validation, WeightedAlgorithmsNeedWeights) {
  const CsrGraph g = generators::path(4);
  for (const char* algorithm : {"mpx-weighted", "mpx-bucketed"}) {
    SCOPED_TRACE(algorithm);
    DecompositionRequest req;
    req.algorithm = algorithm;
    EXPECT_THROW((void)decompose(g, req), std::invalid_argument);
  }
}

// The headline contract: for every fixture family and at every thread
// width, the facade's owner/settle arrays match the legacy entry point's
// byte for byte.
TEST(FacadeLegacyIdentity, MpxAcrossFixturesAndThreads) {
  for (const auto& [name, g] : mpx::testing::canonical_graphs()) {
    SCOPED_TRACE(name);
    DecompositionRequest req;
    req.beta = 0.2;
    req.seed = 2013;

    ScopedNumThreads baseline(1);
    const auto [ref_owner, ref_settle] =
        legacy_arrays(partition(g, req.partition_options()));

    for (const int threads : kThreadCounts) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      ScopedNumThreads guard(threads);
      const DecompositionResult result = decompose(g, req);
      EXPECT_EQ(result.owner, ref_owner);
      EXPECT_EQ(result.settle, ref_settle);
      EXPECT_TRUE(result.radii.empty());
      EXPECT_FALSE(result.weighted());
    }
  }
}

TEST(FacadeLegacyIdentity, BaselinesAcrossFixturesAndThreads) {
  for (const auto& [name, g] : mpx::testing::small_graphs()) {
    SCOPED_TRACE(name);
    // ball-growing: the facade maps (beta, seed) onto the seeded random
    // center order.
    {
      BallGrowingOptions legacy;
      legacy.beta = 0.3;
      legacy.order = BallOrder::kRandom;
      legacy.seed = 7;
      const auto [ref_owner, ref_settle] =
          legacy_arrays(ball_growing_decomposition(g, legacy));
      DecompositionRequest req;
      req.algorithm = "ball-growing";
      req.beta = 0.3;
      req.seed = 7;
      for (const int threads : kThreadCounts) {
        SCOPED_TRACE("ball-growing threads=" + std::to_string(threads));
        ScopedNumThreads guard(threads);
        const DecompositionResult result = decompose(g, req);
        EXPECT_EQ(result.owner, ref_owner);
        EXPECT_EQ(result.settle, ref_settle);
      }
    }
    // bgkmpt: defaults mirror BgkmptOptions defaults.
    {
      BgkmptOptions legacy;
      legacy.beta = 0.3;
      legacy.seed = 7;
      const auto [ref_owner, ref_settle] =
          legacy_arrays(bgkmpt_decomposition(g, legacy).decomposition);
      DecompositionRequest req;
      req.algorithm = "bgkmpt";
      req.beta = 0.3;
      req.seed = 7;
      for (const int threads : kThreadCounts) {
        SCOPED_TRACE("bgkmpt threads=" + std::to_string(threads));
        ScopedNumThreads guard(threads);
        const DecompositionResult result = decompose(g, req);
        EXPECT_EQ(result.owner, ref_owner);
        EXPECT_EQ(result.settle, ref_settle);
      }
    }
  }
}

TEST(FacadeLegacyIdentity, WeightedAlgorithmsAcrossFixturesAndThreads) {
  const WeightedCsrGraph reference = mpx::testing::grid3x3_weighted_reference();
  struct WeightedFixture {
    std::string name;
    WeightedCsrGraph graph;
    bool integer_weights;
  };
  std::vector<WeightedFixture> fixtures;
  fixtures.push_back({"grid3x3_weighted_reference", reference, false});
  for (const auto& [name, g] : mpx::testing::small_graphs()) {
    fixtures.push_back({name + "_unit", with_unit_weights(g), true});
  }

  for (const WeightedFixture& fixture : fixtures) {
    SCOPED_TRACE(fixture.name);
    PartitionOptions opt;
    opt.beta = 0.4;
    opt.seed = 11;
    DecompositionRequest req = DecompositionRequest::from_options("", opt);

    {
      const WeightedDecomposition legacy =
          weighted_partition(fixture.graph, opt);
      req.algorithm = "mpx-weighted";
      for (const int threads : kThreadCounts) {
        SCOPED_TRACE("mpx-weighted threads=" + std::to_string(threads));
        ScopedNumThreads guard(threads);
        const DecompositionResult result = decompose(fixture.graph, req);
        EXPECT_TRUE(result.weighted());
        EXPECT_EQ(result.radii, legacy.dist_to_center);
        EXPECT_EQ(result.weighted_decomposition.assignment, legacy.assignment);
        EXPECT_EQ(result.weighted_decomposition.centers, legacy.centers);
        for (vertex_t v = 0; v < result.num_vertices(); ++v) {
          EXPECT_EQ(result.owner[v], legacy.centers[legacy.assignment[v]]);
        }
      }
    }
    if (fixture.integer_weights) {
      const BucketedPartitionResult legacy =
          bucketed_weighted_partition(fixture.graph, opt);
      req.algorithm = "mpx-bucketed";
      for (const int threads : kThreadCounts) {
        SCOPED_TRACE("mpx-bucketed threads=" + std::to_string(threads));
        ScopedNumThreads guard(threads);
        const DecompositionResult result = decompose(fixture.graph, req);
        EXPECT_TRUE(result.weighted());
        EXPECT_EQ(result.radii, legacy.decomposition.dist_to_center);
        EXPECT_EQ(result.weighted_decomposition.assignment,
                  legacy.decomposition.assignment);
        // Integer weights: settle rounds equal the weighted distances.
        for (vertex_t v = 0; v < result.num_vertices(); ++v) {
          EXPECT_EQ(static_cast<double>(result.settle[v]), result.radii[v]);
        }
      }
    }
  }
}

TEST(Workspace, ReuseIsByteIdenticalToColdCalls) {
  DecompositionWorkspace workspace;
  for (const auto& [name, g] : mpx::testing::canonical_graphs()) {
    SCOPED_TRACE(name);
    for (const std::uint64_t seed : {1ull, 2ull}) {
      for (const double beta : {0.5, 0.1}) {
        DecompositionRequest req;
        req.beta = beta;
        req.seed = seed;
        const DecompositionResult cold = decompose(g, req);
        const DecompositionResult warm = decompose(g, req, &workspace);
        EXPECT_EQ(warm.owner, cold.owner);
        EXPECT_EQ(warm.settle, cold.settle);
        EXPECT_EQ(warm.decomposition.num_clusters(),
                  cold.decomposition.num_clusters());
      }
    }
  }
}

TEST(Workspace, SurvivesShrinkingAndGrowingGraphs) {
  DecompositionWorkspace workspace;
  DecompositionRequest req;
  req.beta = 0.3;
  req.seed = 5;
  for (const vertex_t n : {2000u, 10u, 5000u, 1u, 300u}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    const CsrGraph g = generators::grid2d(n / 10 + 1, 10);
    const DecompositionResult cold = decompose(g, req);
    const DecompositionResult warm = decompose(g, req, &workspace);
    EXPECT_EQ(warm.owner, cold.owner);
    EXPECT_EQ(warm.settle, cold.settle);
  }
}

TEST(ShiftBasis, DerivedShiftsMatchDirectGenerationBitwise) {
  const vertex_t n = 500;
  for (const ShiftDistribution distribution :
       {ShiftDistribution::kExponential, ShiftDistribution::kPermutationQuantile,
        ShiftDistribution::kUniform}) {
    SCOPED_TRACE(static_cast<int>(distribution));
    PartitionOptions opt;
    opt.seed = 99;
    opt.distribution = distribution;
    const ShiftBasis basis = make_shift_basis(n, opt);
    for (const double beta : {1.0, 0.37, 0.1, 0.01}) {
      SCOPED_TRACE("beta=" + std::to_string(beta));
      opt.beta = beta;
      const Shifts direct = generate_shifts(n, opt);
      Shifts derived;
      shifts_from_basis(basis, opt, derived);
      EXPECT_EQ(derived.delta, direct.delta);
      EXPECT_EQ(derived.delta_max, direct.delta_max);
      EXPECT_EQ(derived.start_round, direct.start_round);
      EXPECT_EQ(derived.rank, direct.rank);
    }
  }
}

TEST(ShiftBasis, DecomposeWithBasisMatchesWithout) {
  const CsrGraph g = generators::grid2d(40, 40);
  DecompositionRequest req;
  req.seed = 3;
  const ShiftBasis basis = make_shift_basis(g.num_vertices(),
                                            req.partition_options());
  DecompositionWorkspace workspace;
  for (const double beta : {0.5, 0.2, 0.05}) {
    req.beta = beta;
    const DecompositionResult direct = decompose(g, req);
    const DecompositionResult derived = decompose(g, req, &workspace, &basis);
    EXPECT_EQ(derived.owner, direct.owner);
    EXPECT_EQ(derived.settle, direct.settle);
  }
}

TEST(Telemetry, MpxFillsCountersAndTimings) {
  const CsrGraph g = generators::grid2d(60, 60);
  DecompositionRequest req;
  req.beta = 0.2;
  req.seed = 1;
  req.engine = TraversalEngine::kPush;
  const DecompositionResult result = decompose(g, req);
  const RunTelemetry& t = result.telemetry;
  EXPECT_EQ(t.algorithm, "mpx");
  EXPECT_EQ(t.engine, "push");
  EXPECT_EQ(t.phases, 1u);
  EXPECT_GT(t.rounds, 0u);
  EXPECT_GT(t.arcs_scanned, 0u);
  EXPECT_EQ(t.arcs_scanned, result.decomposition.arcs_scanned);
  EXPECT_GE(t.threads, 1);
  EXPECT_GE(t.total_seconds, 0.0);
  EXPECT_GE(t.total_seconds,
            t.shift_seconds);  // the phases nest inside the total
}

TEST(Telemetry, BgkmptReportsPhases) {
  const CsrGraph g = generators::grid2d(30, 30);
  DecompositionRequest req;
  req.algorithm = "bgkmpt";
  req.beta = 0.3;
  const DecompositionResult result = decompose(g, req);
  EXPECT_EQ(result.telemetry.algorithm, "bgkmpt");
  EXPECT_GE(result.telemetry.phases, 1u);
  EXPECT_GT(result.telemetry.rounds, 0u);
}

TEST(Facade, ResultsSatisfyDecompositionInvariants) {
  for (const auto& [name, g] : mpx::testing::small_graphs()) {
    SCOPED_TRACE(name);
    for (const char* algorithm : {"mpx", "ball-growing", "bgkmpt"}) {
      SCOPED_TRACE(algorithm);
      DecompositionRequest req;
      req.algorithm = algorithm;
      req.beta = 0.3;
      req.seed = 17;
      const DecompositionResult result = decompose(g, req);
      EXPECT_TRUE(mpx::testing::check_decomposition_invariants(
          result.decomposition, g, {.beta = 0.3}));
      // owner/settle agree with the compacted view.
      for (vertex_t v = 0; v < g.num_vertices(); ++v) {
        EXPECT_EQ(result.owner[v], result.center(result.cluster_of(v)));
        EXPECT_EQ(result.settle[v],
                  result.decomposition.dist_to_center(v));
      }
    }
  }
}

TEST(Facade, UnweightedAlgorithmsRunOnWeightedGraphs) {
  const WeightedCsrGraph wg = mpx::testing::grid3x3_weighted_reference();
  DecompositionRequest req;
  req.beta = 0.4;
  req.seed = 2;
  const DecompositionResult via_weighted = decompose(wg, req);
  const DecompositionResult via_topology = decompose(wg.topology(), req);
  EXPECT_EQ(via_weighted.owner, via_topology.owner);
  EXPECT_EQ(via_weighted.settle, via_topology.settle);
  EXPECT_FALSE(via_weighted.weighted());
}

TEST(Facade, DegenerateGraphsSurviveEveryAlgorithm) {
  for (const auto& [name, g] : mpx::testing::degenerate_graphs()) {
    SCOPED_TRACE(name);
    for (const AlgorithmInfo& info : registered_algorithms()) {
      SCOPED_TRACE(std::string(info.name));
      DecompositionRequest req;
      req.algorithm = std::string(info.name);
      req.beta = 0.5;
      const WeightedCsrGraph wg = with_unit_weights(g);
      const DecompositionResult result = decompose(wg, req);
      EXPECT_EQ(result.num_vertices(), g.num_vertices());
      EXPECT_EQ(result.owner.size(), g.num_vertices());
    }
  }
}

}  // namespace
}  // namespace mpx
