// Tests for the second batch of graph families (small world, geometric,
// diagonal grid) and their interaction with the partition routine.
#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/partition.hpp"
#include "core/verify.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"

namespace mpx {
namespace {

using namespace mpx::generators;

TEST(WattsStrogatz, ZeroRewiringIsARingLattice) {
  const CsrGraph g = watts_strogatz(50, 4, 0.0, 1);
  EXPECT_EQ(g.num_vertices(), 50u);
  EXPECT_EQ(g.num_edges(), 100u);  // n * k / 2
  for (vertex_t v = 0; v < 50; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_TRUE(is_connected(g));
}

TEST(WattsStrogatz, RewiringShrinksDiameter) {
  const CsrGraph lattice = watts_strogatz(400, 4, 0.0, 2);
  const CsrGraph small_world = watts_strogatz(400, 4, 0.3, 2);
  EXPECT_LT(two_sweep_diameter_lower_bound(small_world),
            two_sweep_diameter_lower_bound(lattice));
}

TEST(WattsStrogatz, SeedDeterminism) {
  const CsrGraph a = watts_strogatz(100, 6, 0.2, 5);
  const CsrGraph b = watts_strogatz(100, 6, 0.2, 5);
  EXPECT_TRUE(std::equal(a.targets().begin(), a.targets().end(),
                         b.targets().begin()));
}

TEST(RandomGeometric, EdgesRespectTheRadius) {
  // Structural checks: symmetric, loop-free, deterministic, and dense
  // enough for the chosen radius.
  const CsrGraph g = random_geometric(500, 0.08, 3);
  EXPECT_EQ(g.num_vertices(), 500u);
  EXPECT_TRUE(g.is_symmetric());
  // Expected degree ~ n * pi * r^2 ~ 10; allow wide slack.
  const DegreeStats s = degree_stats(g);
  EXPECT_GT(s.mean_degree, 2.0);
  EXPECT_LT(s.mean_degree, 40.0);
  const CsrGraph h = random_geometric(500, 0.08, 3);
  EXPECT_TRUE(std::equal(g.targets().begin(), g.targets().end(),
                         h.targets().begin()));
}

TEST(RandomGeometric, LargerRadiusMoreEdges) {
  const CsrGraph sparse = random_geometric(400, 0.05, 7);
  const CsrGraph dense = random_geometric(400, 0.15, 7);
  EXPECT_LT(sparse.num_edges(), dense.num_edges());
}

TEST(Grid2dDiag, CountsAndDiameter) {
  const CsrGraph g = grid2d_diag(5, 5);
  EXPECT_EQ(g.num_vertices(), 25u);
  // 5*4 horizontal + 4*5 vertical + 2 * 4*4 diagonals.
  EXPECT_EQ(g.num_edges(), 20u + 20u + 32u);
  // Chebyshev metric: diameter = max(rows, cols) - 1.
  EXPECT_EQ(exact_diameter(g), 4u);
  EXPECT_EQ(g.degree(12), 8u);  // interior king move
  EXPECT_TRUE(is_connected(g));
}

TEST(NewFamilies, PartitionProducesValidDecompositions) {
  const CsrGraph graphs[] = {watts_strogatz(600, 6, 0.1, 3),
                             random_geometric(600, 0.07, 5),
                             grid2d_diag(20, 20)};
  for (const CsrGraph& g : graphs) {
    PartitionOptions opt;
    opt.beta = 0.2;
    opt.seed = 9;
    const Decomposition dec = partition(g, opt);
    const VerifyResult vr = verify_decomposition(dec, g);
    EXPECT_TRUE(vr.ok) << vr.message;
    const DecompositionStats s = analyze(dec, g);
    EXPECT_LE(s.cut_fraction, 0.8);
  }
}

}  // namespace
}  // namespace mpx
