// Tests for the decomposition server (src/server/server.hpp) and client
// (src/server/client.hpp): served answers byte-identical to the
// in-process DecompositionSession across the golden fixtures and
// 1/2/8 worker threads, application-level error responses, malformed
// wire bytes answered with kErrorResponse (never an abort), concurrent
// clients, warm start via load_cached, graceful shutdown, and the
// clear-error contract for unavailable socket paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/session.hpp"
#include "graph/generators.hpp"
#include "graph/snapshot.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "server/socket_util.hpp"
#include "tests/support/fixtures.hpp"
#include "tests/support/golden.hpp"
#include "tests/support/temp_dir.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define MPX_TEST_HAVE_SOCKETS 1
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace mpx::server {
namespace {

#if MPX_TEST_HAVE_SOCKETS

DecompositionRequest request(double beta, std::uint64_t seed = 42,
                             const char* algorithm = "mpx") {
  DecompositionRequest req;
  req.algorithm = algorithm;
  req.beta = beta;
  req.seed = seed;
  return req;
}

/// A raw (frame-less) connection for the malformed-bytes tests; -1 when
/// the path is unusable.
int connect_raw(const std::string& socket_path) {
  sockaddr_un addr{};
  if (!detail::fill_unix_address(socket_path, addr)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Blocking exact read on a raw fd; false on EOF or error.
bool read_exact(int fd, std::uint8_t* into, std::size_t bytes) {
  std::size_t got = 0;
  while (got < bytes) {
    const ssize_t n = ::recv(fd, into + got, bytes - got, 0);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

/// One framed round trip on a raw fd (tests that manage the socket
/// themselves, e.g. across an fd-exhaustion window).
InfoResponse raw_info_round_trip(int fd) {
  const std::vector<std::uint8_t> frame =
      encode_message(MessageType::kInfoRequest, InfoRequest{});
  EXPECT_EQ(::send(fd, frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));
  std::uint8_t header_bytes[kFrameHeaderBytes];
  EXPECT_TRUE(read_exact(fd, header_bytes, sizeof(header_bytes)));
  const FrameHeader header = decode_frame_header(header_bytes);
  EXPECT_EQ(header.type, MessageType::kInfoResponse);
  std::vector<std::uint8_t> payload(header.payload_bytes);
  EXPECT_TRUE(read_exact(fd, payload.data(), payload.size()));
  return decode_info_response(payload);
}

/// A server over `snapshot` on a unix socket inside `dir`, plus the
/// matching in-process session for expected answers.
struct ServedSnapshot {
  ServedSnapshot(const mpx::testing::TempDir& dir,
                 const std::string& snapshot_path, int workers,
                 std::vector<WarmStartEntry> warm = {})
      : session(DecompositionSession::open_snapshot(snapshot_path)) {
    ServerConfig config;
    config.snapshot_path = snapshot_path;
    config.socket_path =
        dir.file("serve_w" + std::to_string(workers) + ".sock");
    config.workers = workers;
    config.warm = std::move(warm);
    server = std::make_unique<DecompServer>(std::move(config));
    server->start();
  }

  ~ServedSnapshot() {
    if (server != nullptr) server->stop();
  }

  [[nodiscard]] DecompClient connect() const {
    return DecompClient::connect_unix(server->config().socket_path);
  }

  DecompositionSession session;  // the in-process reference
  std::unique_ptr<DecompServer> server;
};

/// The acceptance criterion: a served run + cluster_of / boundary_arcs /
/// estimate_distance sequence answers byte-identically to the in-process
/// session for the same requests.
void expect_served_matches_session(DecompClient& client,
                                   DecompositionSession& session,
                                   const DecompositionRequest& req,
                                   bool expect_weighted) {
  const DecompositionResult& expected = session.run(req);

  const RunResponse run = client.run(req, /*include_arrays=*/true);
  EXPECT_EQ(run.num_clusters, expected.num_clusters());
  EXPECT_EQ(run.is_weighted, expected.weighted());
  EXPECT_EQ(run.is_weighted, expect_weighted);
  EXPECT_EQ(run.rounds, expected.telemetry.rounds);
  EXPECT_EQ(run.arcs_scanned, expected.telemetry.arcs_scanned);
  ASSERT_TRUE(run.has_arrays);
  EXPECT_EQ(run.owner, expected.owner);    // byte-identical arrays
  EXPECT_EQ(run.settle, expected.settle);

  const vertex_t n = session.topology().num_vertices();
  for (vertex_t v = 0; v < n; v += (n > 64 ? 13 : 1)) {
    EXPECT_EQ(client.cluster_of(v, req), session.cluster_of(v, req));
    EXPECT_EQ(client.owner_of(v, req), session.owner_of(v, req));
  }

  const std::vector<Edge> served_boundary = client.boundary_arcs(req);
  const std::span<const Edge> expected_boundary = session.boundary_arcs(req);
  ASSERT_EQ(served_boundary.size(), expected_boundary.size());
  for (std::size_t i = 0; i < served_boundary.size(); ++i) {
    EXPECT_EQ(served_boundary[i], expected_boundary[i]);
  }

  if (!expect_weighted) {
    for (vertex_t u = 0; u < n; u += (n > 64 ? 29 : 2)) {
      for (vertex_t v = 0; v < n; v += (n > 64 ? 31 : 3)) {
        EXPECT_EQ(client.estimate_distance(u, v, req),
                  session.estimate_distance(u, v, req));
      }
    }
  }
}

TEST(Server, ServedAnswersMatchSessionAcrossGoldenFixturesAndWorkers) {
  mpx::testing::TempDir dir("mpx_server");
  struct Fixture {
    std::string path;
    const char* algorithm;
    bool weighted;
  };
  // The checked-in golden snapshots plus a larger generated one (the
  // goldens pin the format; the grid exercises multi-round searches).
  const std::string grid_path = dir.file("grid20.mpxs");
  io::save_snapshot(grid_path, generators::grid2d(20, 20));
  const std::vector<Fixture> fixtures = {
      {mpx::testing::golden_path("grid_3x3.mpxs"), "mpx", false},
      {mpx::testing::golden_path("grid_3x3_weighted.mpxs"), "mpx-weighted",
       true},
      {grid_path, "mpx", false},
  };
  for (const Fixture& fixture : fixtures) {
    for (const int workers : {1, 2, 8}) {
      SCOPED_TRACE(fixture.path + " workers=" + std::to_string(workers));
      ServedSnapshot served(dir, fixture.path, workers);
      DecompClient client = served.connect();
      expect_served_matches_session(client, served.session,
                                    request(0.4, 7, fixture.algorithm),
                                    fixture.weighted);
    }
  }
}

TEST(Server, BatchMatchesSessionRunBatch) {
  mpx::testing::TempDir dir("mpx_server");
  const std::string path = dir.file("grid.mpxs");
  io::save_snapshot(path, generators::grid2d(16, 16));
  ServedSnapshot served(dir, path, 2);
  DecompClient client = served.connect();

  const std::vector<double> betas = {0.5, 0.2, 0.1};
  const BatchResponse batch = client.batch(request(0.1), betas);
  ASSERT_EQ(batch.entries.size(), betas.size());
  const auto expected = served.session.run_batch(request(0.1), betas);
  DecompositionRequest per_beta = request(0.1);
  for (std::size_t i = 0; i < betas.size(); ++i) {
    per_beta.beta = betas[i];
    EXPECT_EQ(batch.entries[i].beta, betas[i]);
    EXPECT_EQ(batch.entries[i].num_clusters, expected[i]->num_clusters());
    EXPECT_EQ(batch.entries[i].rounds, expected[i]->telemetry.rounds);
    EXPECT_EQ(batch.entries[i].boundary_edges,
              served.session.boundary_arcs(per_beta).size());
  }
}

TEST(Server, InfoDescribesTheServedGraph) {
  mpx::testing::TempDir dir("mpx_server");
  const CsrGraph g = generators::grid2d(10, 10);
  const std::string path = dir.file("grid.mpxs");
  io::save_snapshot(path, g);
  ServedSnapshot served(dir, path, 2);
  DecompClient client = served.connect();

  const InfoResponse info = client.info();
  EXPECT_EQ(info.num_vertices, g.num_vertices());
  EXPECT_EQ(info.num_edges, g.num_edges());
  EXPECT_FALSE(info.weighted);
  EXPECT_EQ(info.workers, 2);
}

TEST(Server, RepeatRequestsHitTheWorkerCache) {
  mpx::testing::TempDir dir("mpx_server");
  const std::string path = dir.file("grid.mpxs");
  io::save_snapshot(path, generators::grid2d(12, 12));
  ServedSnapshot served(dir, path, 1);
  DecompClient client = served.connect();

  EXPECT_FALSE(client.run(request(0.3)).from_cache);
  EXPECT_TRUE(client.run(request(0.3)).from_cache);
  EXPECT_FALSE(client.run(request(0.5)).from_cache);  // new entry
}

TEST(Server, QueryMemoTracksRequestSwitchesOnOneConnection) {
  // The per-connection query memo (including its byte-level fast path)
  // must never serve a stale entry: interleave point queries of two
  // requests with run() calls that repoint the memo at a different
  // decomposition, and check every answer against the session.
  mpx::testing::TempDir dir("mpx_server");
  const std::string path = dir.file("grid.mpxs");
  io::save_snapshot(path, generators::grid2d(12, 12));
  ServedSnapshot served(dir, path, 1);
  DecompClient client = served.connect();

  const DecompositionRequest a = request(0.3);
  const DecompositionRequest b = request(0.5, 99);
  const vertex_t n = served.session.topology().num_vertices();
  for (vertex_t v = 0; v < n; v += 17) {
    EXPECT_EQ(client.cluster_of(v, a), served.session.cluster_of(v, a));
  }
  (void)client.run(b);  // repoints the connection memo at b's entry
  for (vertex_t v = 0; v < n; v += 17) {
    // Same bytes as the earlier queries: must not hit b's entry.
    EXPECT_EQ(client.cluster_of(v, a), served.session.cluster_of(v, a));
    EXPECT_EQ(client.cluster_of(v, b), served.session.cluster_of(v, b));
    EXPECT_EQ(client.owner_of(v, a), served.session.owner_of(v, a));
  }
}

TEST(Server, RejectsBadRequestsWithTypedErrors) {
  mpx::testing::TempDir dir("mpx_server");
  const std::string path = dir.file("grid.mpxs");
  io::save_snapshot(path, generators::grid2d(8, 8));
  ServedSnapshot served(dir, path, 1);
  DecompClient client = served.connect();

  const auto expect_error = [&](auto&& call, ErrorCode want) {
    try {
      call();
      FAIL() << "expected ServerError";
    } catch (const ServerError& e) {
      EXPECT_EQ(e.code(), want);
    }
  };
  expect_error([&] { (void)client.run(request(0.0)); },
               ErrorCode::kInvalidRequest);  // beta outside (0, 1]
  expect_error([&] { (void)client.run(request(0.3, 1, "no-such-algo")); },
               ErrorCode::kInvalidRequest);
  expect_error([&] { (void)client.cluster_of(1'000'000, request(0.3)); },
               ErrorCode::kOutOfRange);
  expect_error([&] { (void)client.estimate_distance(0, 1'000'000,
                                                    request(0.3)); },
               ErrorCode::kOutOfRange);
  // A weights-requiring algorithm on an unweighted graph is refused with
  // the facade's invalid_argument, carried as kInvalidRequest.
  expect_error([&] { (void)client.run(request(0.3, 1, "mpx-weighted")); },
               ErrorCode::kInvalidRequest);

  // The connection survives every rejection above.
  EXPECT_EQ(client.cluster_of(0, request(0.3)),
            served.session.cluster_of(0, request(0.3)));
}

TEST(Server, RejectsDistanceEstimatesForWeightedAlgorithms) {
  mpx::testing::TempDir dir("mpx_server");
  const std::string path = dir.file("grid_w.mpxs");
  io::save_snapshot(path, mpx::testing::grid3x3_weighted_reference());
  ServedSnapshot served(dir, path, 1);
  DecompClient client = served.connect();
  try {
    (void)client.estimate_distance(0, 1, request(0.4, 1, "mpx-weighted"));
    FAIL() << "expected ServerError";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnsupportedQuery);
  }
}

TEST(Server, AnswersMalformedBytesWithErrorResponseAndSurvives) {
  mpx::testing::TempDir dir("mpx_server");
  const std::string path = dir.file("grid.mpxs");
  io::save_snapshot(path, generators::grid2d(6, 6));
  ServedSnapshot served(dir, path, 2);
  const std::string socket_path = served.server->config().socket_path;

  // Raw connection sending 16 bytes of garbage where a frame header
  // belongs: the server must answer kErrorResponse and drop the
  // connection — never abort.
  {
    const int fd = connect_raw(socket_path);
    ASSERT_GE(fd, 0);
    const char garbage[16] = "not a frame!!!!";
    ASSERT_EQ(::send(fd, garbage, sizeof(garbage), 0),
              static_cast<ssize_t>(sizeof(garbage)));
    std::uint8_t header_bytes[kFrameHeaderBytes];
    std::size_t got = 0;
    while (got < sizeof(header_bytes)) {
      const ssize_t n = ::recv(fd, header_bytes + got,
                               sizeof(header_bytes) - got, 0);
      ASSERT_GT(n, 0);
      got += static_cast<std::size_t>(n);
    }
    const FrameHeader header = decode_frame_header(header_bytes);
    EXPECT_EQ(header.type, MessageType::kErrorResponse);
    std::vector<std::uint8_t> payload(header.payload_bytes);
    got = 0;
    while (got < payload.size()) {
      const ssize_t n =
          ::recv(fd, payload.data() + got, payload.size() - got, 0);
      ASSERT_GT(n, 0);
      got += static_cast<std::size_t>(n);
    }
    const ErrorResponse err = decode_error_response(payload);
    EXPECT_EQ(err.code, ErrorCode::kMalformedPayload);
    ::close(fd);
  }

  // A well-framed frame whose *payload* is garbage keeps the stream in
  // sync: the server answers the error and the connection stays usable.
  {
    DecompClient client = served.connect();
    // New clients still work after the garbage connection...
    EXPECT_EQ(client.info().num_vertices, 36u);
  }
  EXPECT_GE(served.server->stats().errors, 1u);
}

TEST(Server, RejectsOversizedRequestPayloadsBeforeAllocating) {
  mpx::testing::TempDir dir("mpx_server");
  const std::string path = dir.file("grid.mpxs");
  io::save_snapshot(path, generators::grid2d(4, 4));
  ServedSnapshot served(dir, path, 1);
  const std::string socket_path = served.server->config().socket_path;

  // A well-formed header claiming a payload over the request-direction
  // cap (but under the frame cap, so decode_frame_header accepts it)
  // must be answered with kErrorResponse without the server ever
  // allocating or reading the claimed bytes.
  const int fd = connect_raw(socket_path);
  ASSERT_GE(fd, 0);
  std::vector<std::uint8_t> header =
      encode_frame(MessageType::kRunRequest, {});
  const std::uint64_t huge = kMaxRequestPayloadBytes + 1;
  std::memcpy(header.data() + 8, &huge, sizeof(huge));
  ASSERT_EQ(::send(fd, header.data(), header.size(), 0),
            static_cast<ssize_t>(header.size()));
  std::uint8_t response[kFrameHeaderBytes];
  std::size_t got = 0;
  while (got < sizeof(response)) {
    const ssize_t n = ::recv(fd, response + got, sizeof(response) - got, 0);
    ASSERT_GT(n, 0);
    got += static_cast<std::size_t>(n);
  }
  EXPECT_EQ(decode_frame_header(response).type, MessageType::kErrorResponse);
  ::close(fd);

  DecompClient client = served.connect();  // the server is still alive
  EXPECT_EQ(client.info().num_vertices, 16u);
}

TEST(Server, ShutdownIsNotBlockedByAStalledMidFrameConnection) {
  mpx::testing::TempDir dir("mpx_server");
  const std::string path = dir.file("grid.mpxs");
  io::save_snapshot(path, generators::grid2d(4, 4));
  ServedSnapshot served(dir, path, 1);
  const std::string socket_path = served.server->config().socket_path;

  // Occupy the single worker with a connection stuck halfway through a
  // frame header and never finishing it.
  const int stalled = connect_raw(socket_path);
  ASSERT_GE(stalled, 0);
  const std::uint8_t half[8] = {'M', 'P', 'X', 'Q', 1, 0, 2, 0};
  ASSERT_EQ(::send(stalled, half, sizeof(half), 0),
            static_cast<ssize_t>(sizeof(half)));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // stop() must drain the stalled worker promptly (the mid-frame read
  // re-checks the stop flag every poll interval), not hang forever.
  served.server->stop();
  EXPECT_FALSE(served.server->running());
  ::close(stalled);
}

TEST(Server, ConcurrentClientsGetConsistentAnswers) {
  mpx::testing::TempDir dir("mpx_server");
  const CsrGraph g = generators::grid2d(15, 15);
  const std::string path = dir.file("grid.mpxs");
  io::save_snapshot(path, g);
  ServedSnapshot served(dir, path, 8);
  const DecompositionRequest req = request(0.3);
  const DecompositionResult& expected = served.session.run(req);

  constexpr int kClients = 8;
  constexpr int kIters = 25;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      DecompClient client = served.connect();
      const vertex_t n = g.num_vertices();
      for (int i = 0; i < kIters; ++i) {
        const auto v = static_cast<vertex_t>((c * 7919 + i * 104729) % n);
        if (client.cluster_of(v, req) != expected.cluster_of(v)) ++mismatches;
        if (client.owner_of(v, req) != expected.owner[v]) ++mismatches;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  const ServerStats stats = served.server->stats();
  EXPECT_GE(stats.connections, static_cast<std::uint64_t>(kClients));
  EXPECT_GE(stats.query_requests,
            static_cast<std::uint64_t>(2 * kClients * kIters));
}

TEST(Server, WarmStartServesTheCachedDecomposition) {
  mpx::testing::TempDir dir("mpx_server");
  const CsrGraph g = generators::grid2d(10, 10);
  const std::string snapshot_path = dir.file("grid.mpxs");
  io::save_snapshot(snapshot_path, g);
  const DecompositionRequest req = request(0.3, 9);
  const std::string warm_path = dir.file("warm.dec");
  DecompositionResult expected;
  {
    DecompositionSession warm_session((CsrGraph(g)));
    expected = warm_session.run(req);  // copy: the session dies below
    warm_session.save_cached(req, warm_path);
  }

  ServedSnapshot served(dir, snapshot_path, 2, {{req, warm_path}});
  DecompClient client = served.connect();
  const RunResponse run = client.run(req, /*include_arrays=*/true);
  EXPECT_TRUE(run.from_cache);  // the very first request hits the cache
  EXPECT_EQ(run.owner, expected.owner);
  EXPECT_EQ(run.settle, expected.settle);
}

TEST(Server, CacheBoundEvictsButRestoresWarmEntries) {
  mpx::testing::TempDir dir("mpx_server");
  const CsrGraph g = generators::grid2d(6, 6);
  const std::string snapshot_path = dir.file("grid.mpxs");
  io::save_snapshot(snapshot_path, g);
  const DecompositionRequest warm_req = request(0.3, 9);
  const std::string warm_path = dir.file("warm.dec");
  {
    DecompositionSession warm_session((CsrGraph(g)));
    (void)warm_session.run(warm_req);
    warm_session.save_cached(warm_req, warm_path);
  }

  ServerConfig config;
  config.snapshot_path = snapshot_path;
  config.socket_path = dir.file("bounded.sock");
  config.workers = 1;
  config.warm.push_back({warm_req, warm_path});
  config.max_cached_results = 2;  // warm entry + one request
  DecompServer server(std::move(config));
  server.start();
  {
    DecompClient client =
        DecompClient::connect_unix(server.config().socket_path);
    // Distinct seeds are distinct cache keys: each run grows the cache,
    // and crossing the bound clears it (then restores the warm entry).
    EXPECT_FALSE(client.run(request(0.3, 101)).from_cache);
    EXPECT_FALSE(client.run(request(0.3, 102)).from_cache);  // evicts here
    // The warm entry survived the eviction (restored from its file)...
    EXPECT_TRUE(client.run(warm_req).from_cache);
    // ...while an ordinary entry was dropped and recomputes cold.
    EXPECT_FALSE(client.run(request(0.3, 101)).from_cache);
  }
  server.stop();
}

TEST(Server, WarmStartRejectsMissingFiles) {
  mpx::testing::TempDir dir("mpx_server");
  const std::string snapshot_path = dir.file("grid.mpxs");
  io::save_snapshot(snapshot_path, generators::grid2d(4, 4));
  ServerConfig config;
  config.snapshot_path = snapshot_path;
  config.socket_path = dir.file("warm.sock");
  config.warm.push_back({request(0.3), dir.file("missing.dec")});
  DecompServer server(std::move(config));
  EXPECT_THROW(server.start(), std::runtime_error);
}

TEST(Server, ShutdownRequestDrainsTheServer) {
  mpx::testing::TempDir dir("mpx_server");
  const std::string path = dir.file("grid.mpxs");
  io::save_snapshot(path, generators::grid2d(5, 5));
  ServedSnapshot served(dir, path, 2);
  {
    DecompClient client = served.connect();
    (void)client.run(request(0.4));
    client.shutdown_server();  // acknowledged before the server drains
  }
  EXPECT_TRUE(served.server->stop_requested());
  served.server->wait();
  // The socket is released: connecting again fails cleanly.
  EXPECT_THROW((void)served.connect(), std::runtime_error);
  const ServerStats stats = served.server->stats();
  EXPECT_GE(stats.requests, 2u);
  EXPECT_GE(stats.run_requests, 1u);
}

// --- observability ---------------------------------------------------------

TEST(Server, StatsRequestReportsPerTypeHistogramsAcrossWorkers) {
  mpx::testing::TempDir dir("mpx_server");
  const std::string path = dir.file("grid.mpxs");
  io::save_snapshot(path, generators::grid2d(8, 8));
  for (const int workers : {1, 2, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ServedSnapshot served(dir, path, workers);
    DecompClient client = served.connect();
    // A deterministic traffic mix: the per-type counters and histogram
    // counts below must agree with it regardless of the worker count.
    (void)client.info();
    (void)client.info();
    (void)client.run(request(0.4));         // cold
    (void)client.run(request(0.4));         // cached
    (void)client.run(request(0.4));         // cached
    (void)client.cluster_of(0, request(0.4));
    (void)client.cluster_of(1, request(0.4));
    (void)client.boundary_arcs(request(0.4));
    (void)client.batch(request(0.4), std::vector<double>{0.5, 0.2});

    const StatsResponse stats = client.server_stats();
    EXPECT_EQ(stats.info_requests, 2u);
    EXPECT_EQ(stats.run_requests, 3u);
    EXPECT_EQ(stats.query_requests, 2u);
    EXPECT_EQ(stats.boundary_requests, 1u);
    EXPECT_EQ(stats.batch_requests, 1u);
    EXPECT_EQ(stats.stats_requests, 1u);
    // The total bumps after each handler returns, so the in-flight stats
    // request is not yet included: 2+3+2+1+1 completed requests.
    EXPECT_EQ(stats.requests, 9u);
    EXPECT_EQ(stats.connections, 1u);
    EXPECT_GE(stats.results_computed, 1u);
    EXPECT_GE(stats.store_resident_results, 1u);
    EXPECT_GE(stats.store_computes, 1u);

    // Each service histogram's count equals the requests of its type; the
    // snapshot is taken inside the stats handler, so the in-flight stats
    // request is not yet recorded in server.service.stats.
    const auto count_of = [&](const char* name) {
      const obs::HistogramSnapshot* h = stats.metrics.histogram(name);
      return h == nullptr ? ~0ull : h->count;
    };
    EXPECT_EQ(count_of("server.service.info"), 2u);
    EXPECT_EQ(count_of("server.service.run"), 3u);
    EXPECT_EQ(count_of("server.service.query"), 2u);
    EXPECT_EQ(count_of("server.service.boundary"), 1u);
    EXPECT_EQ(count_of("server.service.batch"), 1u);
    EXPECT_EQ(count_of("server.service.stats"), 0u);
    // Quantiles are ordered and bounded by the exact max.
    const obs::HistogramSnapshot* run_h =
        stats.metrics.histogram("server.service.run");
    ASSERT_NE(run_h, nullptr);
    EXPECT_LE(run_h->quantile(0.5), run_h->quantile(0.99));
    EXPECT_EQ(run_h->quantile(1.0), run_h->max);
    // Queue-wait is recorded once per dispatcher->worker claim; every
    // request needed at least one claim.
    const obs::HistogramSnapshot* queue_h =
        stats.metrics.histogram("server.queue_wait");
    ASSERT_NE(queue_h, nullptr);
    EXPECT_GE(queue_h->count, 9u);
    // The session bridge feeds decomp.*: exactly the cold computes.
    EXPECT_EQ(stats.metrics.counter_or("decomp.computes"),
              stats.store_computes);
    const obs::HistogramSnapshot* total_h =
        stats.metrics.histogram("decomp.total");
    ASSERT_NE(total_h, nullptr);
    EXPECT_EQ(total_h->count, stats.store_computes);
    // A second stats request sees the first one's service record.
    EXPECT_EQ(client.server_stats().metrics.histogram("server.service.stats")
                  ->count,
              1u);
  }
}

TEST(Server, ServerStatsMatchesTheServerSideSnapshot) {
  mpx::testing::TempDir dir("mpx_server");
  const std::string path = dir.file("grid.mpxs");
  io::save_snapshot(path, generators::grid2d(6, 6));
  ServedSnapshot served(dir, path, 2);
  {
    DecompClient client = served.connect();
    (void)client.run(request(0.3));
    (void)client.cluster_of(3, request(0.3));
    const StatsResponse wire = client.server_stats();
    const obs::MetricsSnapshot local = served.server->metrics_snapshot();
    // The wire snapshot is a prefix in time of the server-side one: same
    // instruments, counts only grow, counters only grow.
    for (const obs::NamedHistogram& h : wire.metrics.histograms) {
      const obs::HistogramSnapshot* mine = local.histogram(h.name);
      ASSERT_NE(mine, nullptr) << h.name;
      EXPECT_GE(mine->count, h.histogram.count) << h.name;
    }
    for (const obs::CounterSnapshot& c : wire.metrics.counters) {
      EXPECT_GE(local.counter_or(c.name, 0), c.value) << c.name;
    }
    EXPECT_EQ(wire.metrics.gauge_or("store.resident_results", -1),
              local.gauge_or("store.resident_results", -2));
  }
}

TEST(Server, DisabledMetricsKeepServingButRecordNothing) {
  mpx::testing::TempDir dir("mpx_server");
  const std::string snapshot_path = dir.file("grid.mpxs");
  io::save_snapshot(snapshot_path, generators::grid2d(6, 6));
  ServerConfig config;
  config.snapshot_path = snapshot_path;
  config.socket_path = dir.file("nometrics.sock");
  config.workers = 2;
  config.metrics_enabled = false;
  DecompServer server(std::move(config));
  server.start();
  {
    DecompClient client =
        DecompClient::connect_unix(server.config().socket_path);
    (void)client.run(request(0.3));
    const StatsResponse stats = client.server_stats();
    // The lifetime counters still count (they predate the registry)...
    EXPECT_EQ(stats.run_requests, 1u);
    // ...but every histogram stays empty and the session bridge is off.
    for (const obs::NamedHistogram& h : stats.metrics.histograms) {
      EXPECT_EQ(h.histogram.count, 0u) << h.name;
    }
    EXPECT_EQ(stats.metrics.counter_or("decomp.computes", 0), 0u);
  }
  server.stop();
}

TEST(Server, TraceFileCapturesServedRequests) {
  mpx::testing::TempDir dir("mpx_server");
  const std::string snapshot_path = dir.file("grid.mpxs");
  io::save_snapshot(snapshot_path, generators::grid2d(8, 8));
  const std::string trace_path = dir.file("trace.json");
  ServerConfig config;
  config.snapshot_path = snapshot_path;
  config.socket_path = dir.file("traced.sock");
  config.workers = 2;
  config.trace_path = trace_path;
  DecompServer server(std::move(config));
  server.start();
  {
    DecompClient client =
        DecompClient::connect_unix(server.config().socket_path);
    (void)client.run(request(0.4));  // cold: decompose spans
    (void)client.run(request(0.4));  // cached
    (void)client.boundary_arcs(request(0.4));
  }
  server.stop();  // stop() drains and writes the trace file

  std::ifstream in(trace_path, std::ios::binary);
  ASSERT_TRUE(in.is_open()) << trace_path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string trace = buffer.str();
  // Chrome trace-event JSON: one object, an event array, our span names.
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace.front(), '{');
  EXPECT_EQ(trace.back(), '\n');
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"service.run\""), std::string::npos);
  EXPECT_NE(trace.find("\"service.boundary\""), std::string::npos);
  EXPECT_NE(trace.find("\"queue_wait\""), std::string::npos);
  EXPECT_NE(trace.find("\"response_write\""), std::string::npos);
  EXPECT_NE(trace.find("\"decompose.shift\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(std::count(trace.begin(), trace.end(), '{'),
            std::count(trace.begin(), trace.end(), '}'));
  EXPECT_EQ(std::count(trace.begin(), trace.end(), '['),
            std::count(trace.begin(), trace.end(), ']'));
}

TEST(Server, StartRejectsUnavailableSocketPathsWithClearErrors) {
  mpx::testing::TempDir dir("mpx_server");
  const std::string snapshot_path = dir.file("grid.mpxs");
  io::save_snapshot(snapshot_path, generators::grid2d(3, 3));

  // Path in a directory that does not exist.
  {
    ServerConfig config;
    config.snapshot_path = snapshot_path;
    config.socket_path = dir.file("no-such-dir") + "/server.sock";
    DecompServer server(std::move(config));
    try {
      server.start();
      FAIL() << "expected runtime_error";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("no-such-dir"), std::string::npos)
          << e.what();  // the message names the path
    }
  }
  // Path already bound by a live server.
  {
    ServerConfig config;
    config.snapshot_path = snapshot_path;
    config.socket_path = dir.file("taken.sock");
    DecompServer first{ServerConfig(config)};
    first.start();
    DecompServer second(std::move(config));
    try {
      second.start();
      FAIL() << "expected runtime_error";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("taken.sock"), std::string::npos)
          << e.what();
    }
    first.stop();
  }
  // Bad config is invalid_argument, not a crash.
  {
    DecompServer server(ServerConfig{});
    EXPECT_THROW(server.start(), std::invalid_argument);
  }
}

TEST(Server, StartReclaimsStaleSocketFiles) {
  mpx::testing::TempDir dir("mpx_server");
  const std::string snapshot_path = dir.file("grid.mpxs");
  io::save_snapshot(snapshot_path, generators::grid2d(4, 4));
  const std::string socket_path = dir.file("stale.sock");

  // A crashed server leaves its socket file behind (close without
  // unlink). A restart on the same path must reclaim it.
  {
    sockaddr_un addr{};
    ASSERT_TRUE(detail::fill_unix_address(socket_path, addr));
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    ::close(fd);  // the file persists; nothing listens on it
  }
  ServerConfig config;
  config.snapshot_path = snapshot_path;
  config.socket_path = socket_path;
  DecompServer server(std::move(config));
  server.start();  // would fail EADDRINUSE without stale reclaim
  {
    DecompClient client = DecompClient::connect_unix(socket_path);
    EXPECT_EQ(client.info().num_vertices, 16u);
  }
  server.stop();
}

TEST(Server, TcpLoopbackTransportWorks) {
  mpx::testing::TempDir dir("mpx_server");
  const std::string path = dir.file("grid.mpxs");
  io::save_snapshot(path, generators::grid2d(8, 8));
  ServerConfig config;
  config.snapshot_path = path;
  config.tcp_port = 0;  // ephemeral
  config.workers = 2;
  DecompServer server(std::move(config));
  server.start();
  ASSERT_NE(server.port(), 0);
  {
    DecompClient client = DecompClient::connect_tcp("127.0.0.1",
                                                    server.port());
    EXPECT_EQ(client.info().num_vertices, 64u);
    const DecompositionRequest req = request(0.3);
    DecompositionSession session = DecompositionSession::open_snapshot(path);
    EXPECT_EQ(client.run(req, true).owner, session.run(req).owner);
  }
  server.stop();
}

// --- per-request dispatch regression suite ---------------------------------
// Everything below pins the never-pinned design: idle connections must
// not hold workers, pipelined streams interleave fairly, fd exhaustion
// backs off instead of spinning, dead readers are dropped, and the
// result store is fleet-wide.

TEST(Server, IdleConnectionsBeyondWorkerCountDoNotStarveService) {
  mpx::testing::TempDir dir("mpx_server");
  const std::string path = dir.file("grid.mpxs");
  io::save_snapshot(path, generators::grid2d(10, 10));
  constexpr int kWorkers = 2;
  ServedSnapshot served(dir, path, kWorkers);
  const std::string socket_path = served.server->config().socket_path;

  // workers + 1 connections that connect and then send nothing. Under
  // the old pinned design each one parked a worker in recv() forever, so
  // this many idle peers stopped all service.
  std::vector<int> idle;
  for (int i = 0; i < kWorkers + 1; ++i) {
    const int fd = connect_raw(socket_path);
    ASSERT_GE(fd, 0);
    idle.push_back(fd);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const DecompositionRequest req = request(0.4);
  auto answered = std::async(std::launch::async, [&] {
    DecompClient client = served.connect();
    return client.run(req, /*include_arrays=*/true);
  });
  ASSERT_EQ(answered.wait_for(std::chrono::seconds(20)),
            std::future_status::ready)
      << "an active client starved behind " << idle.size()
      << " idle connections";
  EXPECT_EQ(answered.get().owner, served.session.run(req).owner);
  for (const int fd : idle) ::close(fd);
}

TEST(Server, InterleavedPipelinedClientsAllProgressOnOneWorker) {
  mpx::testing::TempDir dir("mpx_server");
  const CsrGraph g = generators::grid2d(12, 12);
  const std::string path = dir.file("grid.mpxs");
  io::save_snapshot(path, g);
  ServedSnapshot served(dir, path, /*workers=*/1);
  const DecompositionRequest req = request(0.3);
  const DecompositionResult& expected = served.session.run(req);

  // Each client streams bursts longer than the server's per-turn frame
  // cap, so one worker must round-robin the connections rather than
  // draining any one of them to completion. Every client finishing with
  // correct in-order answers is the fairness property.
  constexpr int kClients = 4;
  constexpr int kBursts = 5;
  constexpr std::size_t kBurst = 48;  // > the server's frames-per-turn cap
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      DecompClient client = served.connect();
      const vertex_t n = g.num_vertices();
      std::vector<vertex_t> vertices(kBurst);
      for (int b = 0; b < kBursts; ++b) {
        for (std::size_t i = 0; i < kBurst; ++i) {
          vertices[i] =
              static_cast<vertex_t>((c * 7919 + b * 613 + i * 104729) % n);
        }
        const std::vector<cluster_t> clusters =
            client.cluster_of_pipelined(vertices, req);
        for (std::size_t i = 0; i < kBurst; ++i) {
          if (clusters[i] != expected.cluster_of(vertices[i])) ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(Server, PipelinedResponsesMatchSessionAcrossWorkers) {
  mpx::testing::TempDir dir("mpx_server");
  const CsrGraph g = generators::grid2d(20, 20);
  const std::string path = dir.file("grid.mpxs");
  io::save_snapshot(path, g);
  for (const int workers : {1, 2, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ServedSnapshot served(dir, path, workers);
    DecompClient client = served.connect();

    // A pipelined run burst, including a duplicate that must come back
    // from the shared store, answers byte-identically to the session.
    const std::vector<DecompositionRequest> reqs = {
        request(0.4, 7), request(0.3, 7), request(0.5, 9), request(0.4, 7)};
    const std::vector<RunResponse> responses =
        client.run_pipelined(reqs, /*include_arrays=*/true);
    ASSERT_EQ(responses.size(), reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      SCOPED_TRACE("request " + std::to_string(i));
      const DecompositionResult& expected = served.session.run(reqs[i]);
      EXPECT_EQ(responses[i].num_clusters, expected.num_clusters());
      EXPECT_EQ(responses[i].rounds, expected.telemetry.rounds);
      ASSERT_TRUE(responses[i].has_arrays);
      EXPECT_EQ(responses[i].owner, expected.owner);
      EXPECT_EQ(responses[i].settle, expected.settle);
    }
    EXPECT_TRUE(responses.back().from_cache);  // the duplicate request

    // A pipelined point-query sweep over every vertex stays in order.
    std::vector<vertex_t> vertices(g.num_vertices());
    for (vertex_t v = 0; v < g.num_vertices(); ++v) vertices[v] = v;
    const std::vector<cluster_t> clusters =
        client.cluster_of_pipelined(vertices, reqs[0]);
    const DecompositionResult& expected = served.session.run(reqs[0]);
    ASSERT_EQ(clusters.size(), vertices.size());
    for (vertex_t v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(clusters[v], expected.cluster_of(v)) << "vertex " << v;
    }
  }
}

TEST(Server, ColdIdenticalRequestsComputeOnceFleetWide) {
  mpx::testing::TempDir dir("mpx_server");
  const std::string path = dir.file("grid.mpxs");
  io::save_snapshot(path, generators::grid2d(40, 40));
  ServedSnapshot served(dir, path, /*workers=*/8);
  const DecompositionRequest req = request(0.25, 11);

  // Eight connections race the same cold request. The store is
  // single-flight, so exactly one response is cold and the server runs
  // exactly one decomposition — from_cache is fleet-wide, not
  // per-worker.
  constexpr int kClients = 8;
  std::atomic<int> cold_count{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      DecompClient client = served.connect();
      if (!client.run(req).from_cache) ++cold_count;
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(cold_count.load(), 1);
  EXPECT_EQ(served.server->stats().results_computed, 1u);

  // A brand-new connection is warm too.
  DecompClient late = served.connect();
  EXPECT_TRUE(late.run(req).from_cache);
}

TEST(Server, AcceptBacksOffUnderFdExhaustionAndRecovers) {
  mpx::testing::TempDir dir("mpx_server");
  const std::string path = dir.file("grid.mpxs");
  io::save_snapshot(path, generators::grid2d(4, 4));
  ServedSnapshot served(dir, path, /*workers=*/1);
  const std::string socket_path = served.server->config().socket_path;

  // Shrink the process fd table to exactly one free slot: enough for a
  // client socket(), nothing for the server's accept(). connect() still
  // completes against the listener backlog without an accept.
  rlimit saved{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &saved), 0);
  const int next_free = ::dup(0);
  ASSERT_GE(next_free, 0);
  ::close(next_free);
  rlimit tight = saved;
  tight.rlim_cur = static_cast<rlim_t>(next_free) + 1;
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &tight), 0);
  const int fd = connect_raw(socket_path);
  if (fd < 0) {
    ::setrlimit(RLIMIT_NOFILE, &saved);
    FAIL() << "client connect failed under the tight fd limit";
  }

  // The dispatcher must register the fd exhaustion as a backoff (the old
  // accept loop hot-spun on the permanently-ready listener here).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (served.server->stats().accept_backoffs == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const std::uint64_t backoffs = served.server->stats().accept_backoffs;
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &saved), 0);
  EXPECT_GE(backoffs, 1u);

  // Once fds are available again, the backlogged connection is accepted
  // and served on its original socket — nothing was dropped.
  EXPECT_EQ(raw_info_round_trip(fd).num_vertices, 16u);
  ::close(fd);
  DecompClient client = served.connect();  // and new connections work
  EXPECT_EQ(client.info().num_vertices, 16u);
}

TEST(Server, DropsConnectionsThatStopDrainingResponses) {
  mpx::testing::TempDir dir("mpx_server");
  const std::string path = dir.file("grid.mpxs");
  io::save_snapshot(path, generators::grid2d(100, 100));
  ServerConfig config;
  config.snapshot_path = path;
  config.socket_path = dir.file("timeout.sock");
  config.workers = 2;
  config.write_timeout = 0.3;  // seconds; ~200 ms poll granularity
  DecompServer server(std::move(config));
  server.start();

  // A client that requests full arrays repeatedly and never reads a
  // byte: the responses (~80 KB each) overflow the kernel socket buffer
  // into the server's outbox, the outbox stops draining, and the write
  // timeout must drop the connection instead of holding its memory
  // forever. (A worker was never blocked on it either way — that is the
  // dispatch design — so the timeout is purely a resource bound.)
  const int dead = connect_raw(server.config().socket_path);
  ASSERT_GE(dead, 0);
  RunRequest msg;
  msg.request = request(0.3);
  msg.include_arrays = true;
  const std::vector<std::uint8_t> frame =
      encode_message(MessageType::kRunRequest, msg);
  for (int i = 0; i < 16; ++i) {
    // Later sends may fail once the server drops us; that is the point.
    if (::send(dead, frame.data(), frame.size(), MSG_NOSIGNAL) < 0) break;
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.stats().write_timeouts == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_GE(server.stats().write_timeouts, 1u);
  ::close(dead);

  // The server sheds the dead reader and keeps serving everyone else.
  DecompClient client = DecompClient::connect_unix(server.config().socket_path);
  EXPECT_EQ(client.info().num_vertices, 10000u);
  server.stop();
}

#else  // !MPX_TEST_HAVE_SOCKETS

TEST(Server, SkippedWithoutSocketSupport) {
  GTEST_SKIP() << "socket transports are unavailable on this platform";
}

#endif  // MPX_TEST_HAVE_SOCKETS

}  // namespace
}  // namespace mpx::server
