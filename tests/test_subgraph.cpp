// Tests for induced-subgraph extraction — the strong-diameter verifier
// depends on these being exactly right.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/subgraph.hpp"

namespace mpx {
namespace {

TEST(InducedSubgraph, KeepsOnlyInternalEdges) {
  const CsrGraph g = generators::grid2d(3, 3);  // ids 0..8 row-major
  const std::vector<vertex_t> vertices = {0, 1, 3, 4};  // top-left 2x2 block
  const Subgraph sub = induced_subgraph(g, vertices);
  EXPECT_EQ(sub.num_vertices(), 4u);
  EXPECT_EQ(sub.graph.num_edges(), 4u);  // the 2x2 sub-grid's cycle
  EXPECT_EQ(sub.to_host, vertices);
}

TEST(InducedSubgraph, LocalIdsMapBackToHost) {
  const CsrGraph g = generators::cycle(10);
  const std::vector<vertex_t> vertices = {2, 3, 4};
  const Subgraph sub = induced_subgraph(g, vertices);
  EXPECT_EQ(sub.graph.num_edges(), 2u);  // 2-3, 3-4
  EXPECT_TRUE(sub.graph.has_edge(0, 1));
  EXPECT_TRUE(sub.graph.has_edge(1, 2));
  EXPECT_FALSE(sub.graph.has_edge(0, 2));
}

TEST(InducedSubgraph, UnsortedInputIsCanonicalized) {
  const CsrGraph g = generators::path(6);
  const std::vector<vertex_t> vertices = {4, 1, 3, 2};
  const Subgraph sub = induced_subgraph(g, vertices);
  EXPECT_EQ(sub.to_host, (std::vector<vertex_t>{1, 2, 3, 4}));
  EXPECT_EQ(sub.graph.num_edges(), 3u);
}

TEST(InducedSubgraph, EmptyAndSingleton) {
  const CsrGraph g = generators::path(5);
  const std::vector<vertex_t> none;
  EXPECT_EQ(induced_subgraph(g, none).num_vertices(), 0u);
  const std::vector<vertex_t> one = {2};
  const Subgraph sub = induced_subgraph(g, one);
  EXPECT_EQ(sub.num_vertices(), 1u);
  EXPECT_EQ(sub.graph.num_edges(), 0u);
}

TEST(ExtractCluster, SelectsByAssignment) {
  const CsrGraph g = generators::path(6);
  const std::vector<cluster_t> assignment = {0, 0, 0, 1, 1, 1};
  const Subgraph left = extract_cluster(g, assignment, 0);
  const Subgraph right = extract_cluster(g, assignment, 1);
  EXPECT_EQ(left.num_vertices(), 3u);
  EXPECT_EQ(left.graph.num_edges(), 2u);
  EXPECT_EQ(right.to_host, (std::vector<vertex_t>{3, 4, 5}));
}

TEST(ClusterMembers, GroupsAllVertices) {
  const std::vector<cluster_t> assignment = {2, 0, 1, 0, 2, 2};
  const auto members = cluster_members(assignment, 3);
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0], (std::vector<vertex_t>{1, 3}));
  EXPECT_EQ(members[1], (std::vector<vertex_t>{2}));
  EXPECT_EQ(members[2], (std::vector<vertex_t>{0, 4, 5}));
}

TEST(ClusterMembers, EmptyClustersAllowed) {
  const std::vector<cluster_t> assignment = {0, 0};
  const auto members = cluster_members(assignment, 3);
  EXPECT_EQ(members[0].size(), 2u);
  EXPECT_TRUE(members[1].empty());
  EXPECT_TRUE(members[2].empty());
}

}  // namespace
}  // namespace mpx
