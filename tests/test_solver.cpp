// Tests for the preconditioned conjugate gradient Laplacian solver and the
// full decomposition -> low-stretch tree -> preconditioner pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "graph/builder.hpp"
#include "apps/low_stretch_tree.hpp"
#include "apps/solver.hpp"
#include "graph/generators.hpp"
#include "support/random.hpp"

namespace mpx {
namespace {

using namespace mpx::generators;

std::vector<double> mean_zero_rhs(std::size_t n, std::uint64_t seed) {
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = uniform_double(hash_stream(seed, i)) - 0.5;
  }
  project_mean_zero(b);
  return b;
}

double residual_norm(const LaplacianOperator& lap,
                     const std::vector<double>& x,
                     const std::vector<double>& b) {
  std::vector<double> lx(x.size());
  lap.apply(x, lx);
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += (lx[i] - b[i]) * (lx[i] - b[i]);
  }
  return std::sqrt(acc);
}

TEST(Pcg, SolvesSmallSystemsToTolerance) {
  const WeightedCsrGraph g = with_unit_weights(grid2d(8, 8));
  const LaplacianOperator lap(g);
  const std::vector<double> b = mean_zero_rhs(g.num_vertices(), 1);
  const IdentityPreconditioner id;
  const PcgResult r = pcg_solve(lap, b, id);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(residual_norm(lap, r.x, b), 1e-6);
}

TEST(Pcg, ExactSolutionRecovery) {
  // Build b = L x* and check the solver recovers x* (up to constants).
  const WeightedCsrGraph g = with_unit_weights(cycle(40));
  const LaplacianOperator lap(g);
  std::vector<double> x_star(g.num_vertices());
  for (std::size_t i = 0; i < x_star.size(); ++i) {
    x_star[i] = std::sin(static_cast<double>(i));
  }
  project_mean_zero(x_star);
  std::vector<double> b(g.num_vertices());
  lap.apply(x_star, b);
  const JacobiPreconditioner jacobi(g);
  PcgOptions opt;
  opt.tolerance = 1e-10;
  const PcgResult r = pcg_solve(lap, b, jacobi, opt);
  ASSERT_TRUE(r.converged);
  for (std::size_t i = 0; i < x_star.size(); ++i) {
    EXPECT_NEAR(r.x[i], x_star[i], 1e-5);
  }
}

TEST(Pcg, ZeroRhsGivesZeroSolution) {
  const WeightedCsrGraph g = with_unit_weights(path(10));
  const LaplacianOperator lap(g);
  const std::vector<double> b(10, 0.0);
  const IdentityPreconditioner id;
  const PcgResult r = pcg_solve(lap, b, id);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0u);
  for (const double v : r.x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Pcg, ConstantRhsComponentIsProjectedAway) {
  // b with a constant offset is solvable after projection.
  const WeightedCsrGraph g = with_unit_weights(grid2d(6, 6));
  const LaplacianOperator lap(g);
  std::vector<double> b = mean_zero_rhs(g.num_vertices(), 2);
  for (double& v : b) v += 5.0;  // push b out of range(L)
  const IdentityPreconditioner id;
  const PcgResult r = pcg_solve(lap, b, id);
  EXPECT_TRUE(r.converged);
}

TEST(Pcg, HistoryIsMonotoneEnough) {
  const WeightedCsrGraph g = with_unit_weights(grid2d(12, 12));
  const LaplacianOperator lap(g);
  const std::vector<double> b = mean_zero_rhs(g.num_vertices(), 3);
  const JacobiPreconditioner jacobi(g);
  PcgOptions opt;
  opt.record_history = true;
  const PcgResult r = pcg_solve(lap, b, jacobi, opt);
  ASSERT_TRUE(r.converged);
  ASSERT_FALSE(r.history.empty());
  // CG residuals oscillate, but the final entry must be below tolerance
  // and the history must shrink over any 10x window.
  EXPECT_LT(r.history.back(), opt.tolerance);
}

TEST(Pcg, PreconditionersAgreeOnTheSolution) {
  // Connected by construction: a disconnected graph makes the globally
  // projected system inconsistent.
  const WeightedCsrGraph g = with_unit_weights(hypercube(7));
  const LaplacianOperator lap(g);
  const std::vector<double> b = mean_zero_rhs(g.num_vertices(), 4);
  PcgOptions opt;
  opt.tolerance = 1e-10;

  const IdentityPreconditioner id;
  const JacobiPreconditioner jacobi(g);
  const PcgResult ri = pcg_solve(lap, b, id, opt);
  const PcgResult rj = pcg_solve(lap, b, jacobi, opt);
  ASSERT_TRUE(ri.converged);
  ASSERT_TRUE(rj.converged);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(ri.x[i], rj.x[i], 1e-5);
  }
}

TEST(Pipeline, TreePreconditionedSolveWorksEndToEnd) {
  // The paper's motivating pipeline: decompose -> low-stretch tree ->
  // tree preconditioner -> PCG.
  const CsrGraph topo = grid2d(16, 16);
  const WeightedCsrGraph g = with_unit_weights(topo);
  const LaplacianOperator lap(g);
  const std::vector<double> b = mean_zero_rhs(g.num_vertices(), 5);

  LowStretchTreeOptions lst_opt;
  lst_opt.seed = 7;
  const LowStretchTreeResult lst = low_stretch_tree(topo, lst_opt);
  const WeightedCsrGraph tree = with_unit_weights(lst.tree);
  const TreePreconditioner precond(tree);

  const PcgResult r = pcg_solve(lap, b, precond);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(residual_norm(lap, r.x, b), 1e-6);
}

TEST(Pipeline, TreePreconditionerReducesIterationsOnGrids) {
  const CsrGraph topo = grid2d(24, 24);
  const WeightedCsrGraph g = with_unit_weights(topo);
  const LaplacianOperator lap(g);
  const std::vector<double> b = mean_zero_rhs(g.num_vertices(), 6);
  PcgOptions opt;
  opt.tolerance = 1e-8;

  const IdentityPreconditioner id;
  const PcgResult plain = pcg_solve(lap, b, id, opt);

  LowStretchTreeOptions lst_opt;
  lst_opt.seed = 3;
  const LowStretchTreeResult lst = low_stretch_tree(topo, lst_opt);
  const TreePreconditioner precond(with_unit_weights(lst.tree));
  const PcgResult tree = pcg_solve(lap, b, precond, opt);

  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(tree.converged);
  // The tree preconditioner should not be drastically worse; on grids it
  // typically wins. Keep the assertion one-sided but generous.
  EXPECT_LE(tree.iterations, plain.iterations * 2);
}

TEST(Pcg, RespectsMaxIterations) {
  const WeightedCsrGraph g = with_unit_weights(grid2d(20, 20));
  const LaplacianOperator lap(g);
  const std::vector<double> b = mean_zero_rhs(g.num_vertices(), 7);
  const IdentityPreconditioner id;
  PcgOptions opt;
  opt.tolerance = 1e-14;
  opt.max_iterations = 3;
  const PcgResult r = pcg_solve(lap, b, id, opt);
  EXPECT_FALSE(r.converged);
  EXPECT_LE(r.iterations, 3u);
}

}  // namespace
}  // namespace mpx
