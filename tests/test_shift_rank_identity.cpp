// Bitwise-identity suite for the bucketed shift rank (ISSUE 7).
//
// The bucketed rank (parallel/bucket_rank.hpp) replaced the comparator
// sort in fractional_ranks() and parallel_random_permutation(). Its
// correctness claim is exact, not approximate: the produced order must be
// bit-for-bit the order the retired sort produced, for every distribution,
// tie-break, thread count, and graph in the fixture corpus — otherwise
// owner/settle arrays drift and every downstream byte-identity guarantee
// breaks. This suite pins that claim against independent reference
// implementations of the old sorts, and additionally holds the warm-run
// zero-allocation property of the workspace-owned scratch.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <numeric>
#include <vector>

#include "core/decomposer.hpp"
#include "core/shifts.hpp"
#include "parallel/thread_env.hpp"
#include "support/fixtures.hpp"
#include "support/random.hpp"

namespace {

// Global allocation counter for the warm-run zero-allocation test. Relaxed
// atomics: the tests that read it run the measured region and the readback
// on the same thread.
std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mpx {
namespace {

PartitionOptions opts(double beta, std::uint64_t seed,
                      ShiftDistribution dist = ShiftDistribution::kExponential,
                      TieBreak tb = TieBreak::kFractionalShift) {
  PartitionOptions o;
  o.beta = beta;
  o.seed = seed;
  o.distribution = dist;
  o.tie_break = tb;
  return o;
}

constexpr ShiftDistribution kDistributions[] = {
    ShiftDistribution::kExponential, ShiftDistribution::kPermutationQuantile,
    ShiftDistribution::kUniform};

constexpr TieBreak kTieBreaks[] = {TieBreak::kFractionalShift,
                                   TieBreak::kRandomPermutation,
                                   TieBreak::kLexicographic};

/// The retired fractional rank, verbatim: stable order of
/// frac(delta_max - delta), ties by vertex id, via a comparison sort.
std::vector<std::uint32_t> reference_fractional_ranks(
    const std::vector<double>& delta, double delta_max) {
  const std::size_t n = delta.size();
  std::vector<double> frac(n);
  for (std::size_t u = 0; u < n; ++u) {
    const double start = delta_max - delta[u];
    frac[u] = start - std::floor(start);
  }
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return frac[a] != frac[b] ? frac[a] < frac[b] : a < b;
            });
  std::vector<std::uint32_t> rank(n);
  for (std::uint32_t i = 0; i < n; ++i) rank[order[i]] = i;
  return rank;
}

/// The retired permutation construction, verbatim: sort indices by
/// (hash_stream(seed, i), i).
std::vector<std::uint32_t> reference_permutation(std::size_t n,
                                                 std::uint64_t seed) {
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  std::sort(perm.begin(), perm.end(),
            [seed](std::uint32_t a, std::uint32_t b) {
              const std::uint64_t ka = hash_stream(seed, a);
              const std::uint64_t kb = hash_stream(seed, b);
              return ka != kb ? ka < kb : a < b;
            });
  return perm;
}

/// Rank vector the retired code produced for (opt, n) — the oracle every
/// bucketed variant must reproduce exactly.
std::vector<std::uint32_t> reference_ranks(vertex_t n,
                                           const PartitionOptions& opt,
                                           const Shifts& s) {
  switch (opt.tie_break) {
    case TieBreak::kFractionalShift:
      return reference_fractional_ranks(s.delta, s.delta_max);
    case TieBreak::kRandomPermutation: {
      const std::vector<std::uint32_t> perm = reference_permutation(
          n, hash_stream(opt.seed, 0x7065726d75746174ULL));
      std::vector<std::uint32_t> rank(n);
      for (std::uint32_t i = 0; i < n; ++i) rank[perm[i]] = i;
      return rank;
    }
    case TieBreak::kLexicographic: {
      std::vector<std::uint32_t> rank(n);
      std::iota(rank.begin(), rank.end(), 0u);
      return rank;
    }
  }
  return {};
}

TEST(ShiftRankIdentity, MatchesSortReferenceEverywhere) {
  for (const vertex_t n : {vertex_t{0}, vertex_t{1}, vertex_t{2}, vertex_t{37},
                           vertex_t{1000}, vertex_t{20000}}) {
    for (const ShiftDistribution dist : kDistributions) {
      for (const TieBreak tb : kTieBreaks) {
        for (const std::uint64_t seed : {0ull, 42ull, 0xdeadbeefull}) {
          const PartitionOptions o = opts(0.1, seed, dist, tb);
          const Shifts s = generate_shifts(n, o);
          ASSERT_EQ(s.rank, reference_ranks(n, o, s))
              << "n=" << n << " dist=" << static_cast<int>(dist)
              << " tb=" << static_cast<int>(tb) << " seed=" << seed;
        }
      }
    }
  }
}

TEST(ShiftRankIdentity, ParallelPermutationMatchesSortReference) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{255},
                              std::size_t{256}, std::size_t{100000}}) {
    for (const std::uint64_t seed : {1ull, 7ull, 1234567ull}) {
      ASSERT_EQ(parallel_random_permutation(n, seed),
                reference_permutation(n, seed))
          << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(ShiftRankIdentity, ThreadCountInvariant) {
  // The scatter order inside a bucket is racy; the finishing sort must
  // erase it at every thread count.
  const vertex_t n = 50000;
  for (const ShiftDistribution dist : kDistributions) {
    for (const TieBreak tb : kTieBreaks) {
      const PartitionOptions o = opts(0.05, 99, dist, tb);
      Shifts at_one;
      {
        ScopedNumThreads guard(1);
        at_one = generate_shifts(n, o);
      }
      for (const int threads : {2, 8}) {
        ScopedNumThreads guard(threads);
        const Shifts s = generate_shifts(n, o);
        ASSERT_EQ(s.rank, at_one.rank)
            << "threads=" << threads << " dist=" << static_cast<int>(dist)
            << " tb=" << static_cast<int>(tb);
        ASSERT_EQ(s.delta, at_one.delta);
        ASSERT_EQ(s.start_round, at_one.start_round);
      }
    }
  }
}

TEST(ShiftRankIdentity, BasisDerivedShiftsMatchDirectAtEveryLadderBeta) {
  // The batch path: one basis, the BENCH_session 4-beta ladder. Everything
  // the search consumes — delta, delta_max, start_round, rank — must be
  // bitwise-equal to a direct draw, including the basis-cached maximum.
  const vertex_t n = 30000;
  for (const ShiftDistribution dist : kDistributions) {
    for (const TieBreak tb : kTieBreaks) {
      const PartitionOptions base = opts(0.5, 17, dist, tb);
      const ShiftBasis basis = make_shift_basis(n, base);
      for (const double beta : {0.5, 0.2, 0.1, 0.05}) {
        PartitionOptions o = base;
        o.beta = beta;
        Shifts derived;
        shifts_from_basis(basis, o, derived);
        const Shifts direct = generate_shifts(n, o);
        ASSERT_EQ(derived.delta, direct.delta)
            << "beta=" << beta << " dist=" << static_cast<int>(dist);
        ASSERT_EQ(derived.delta_max, direct.delta_max) << "beta=" << beta;
        ASSERT_EQ(derived.start_round, direct.start_round) << "beta=" << beta;
        ASSERT_EQ(derived.rank, direct.rank)
            << "beta=" << beta << " tb=" << static_cast<int>(tb);
      }
    }
  }
}

TEST(ShiftRankIdentity, OwnerSettleIdenticalAcrossFixtureCorpus) {
  // End-to-end: decompose every canonical graph and hold the owner/settle
  // arrays equal to what the sort-order ranks would have produced — i.e.
  // recompute ranks by reference and check the engine saw the same
  // schedule. Runs at two thread counts for the full owner/settle paths.
  for (const auto& [name, graph] : mpx::testing::canonical_graphs()) {
    DecompositionRequest req;
    req.algorithm = "mpx";
    req.beta = 0.2;
    req.seed = 11;
    const PartitionOptions o = req.partition_options();
    const Shifts s = generate_shifts(graph.num_vertices(), o);
    ASSERT_EQ(s.rank, reference_ranks(graph.num_vertices(), o, s)) << name;

    DecompositionResult one;
    {
      ScopedNumThreads guard(1);
      one = decompose(graph, req);
    }
    ScopedNumThreads guard(4);
    const DecompositionResult four = decompose(graph, req);
    ASSERT_EQ(one.owner, four.owner) << name;
    ASSERT_EQ(one.settle, four.settle) << name;
  }
}

TEST(ShiftRankIdentity, WarmWorkspaceRunsAllocateNothing) {
  // The workspace-owned scratch (rank records, bucket counters, scan block
  // sums) and the Shifts vectors are sized by the first call; repeat calls
  // at the same n must not touch the allocator at all.
  const vertex_t n = 60000;
  for (const TieBreak tb :
       {TieBreak::kFractionalShift, TieBreak::kLexicographic}) {
    const PartitionOptions o = opts(0.1, 5, ShiftDistribution::kExponential, tb);
    Shifts s;
    ShiftWorkspace ws;
    generate_shifts(n, o, s, &ws);  // cold: sizes everything
    const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
    for (int rep = 0; rep < 3; ++rep) generate_shifts(n, o, s, &ws);
    const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
    EXPECT_EQ(after, before) << "tie_break=" << static_cast<int>(tb);
  }
}

TEST(ShiftRankIdentity, WarmBasisRunsAllocateNothing) {
  // Same property for the batch path: after one beta warms the workspace,
  // further betas (same n) are allocation-free.
  const vertex_t n = 60000;
  const PartitionOptions base = opts(0.5, 23);
  const ShiftBasis basis = make_shift_basis(n, base);
  Shifts s;
  ShiftWorkspace ws;
  PartitionOptions o = base;
  shifts_from_basis(basis, o, s, &ws);
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (const double beta : {0.2, 0.1, 0.05}) {
    o.beta = beta;
    shifts_from_basis(basis, o, s, &ws);
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
}

}  // namespace
}  // namespace mpx
