// Tests for the LDD-based spanner construction.
#include <gtest/gtest.h>

#include "apps/spanner.hpp"
#include "bfs/sequential_bfs.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"

namespace mpx {
namespace {

using namespace mpx::generators;

PartitionOptions opts(double beta, std::uint64_t seed) {
  PartitionOptions o;
  o.beta = beta;
  o.seed = seed;
  return o;
}

TEST(Spanner, IsASubgraph) {
  const CsrGraph g = erdos_renyi(300, 1500, 3);
  const SpannerResult r = ldd_spanner(g, opts(0.2, 1));
  EXPECT_EQ(r.spanner.num_vertices(), g.num_vertices());
  for (vertex_t u = 0; u < r.spanner.num_vertices(); ++u) {
    for (const vertex_t v : r.spanner.neighbors(u)) {
      EXPECT_TRUE(g.has_edge(u, v)) << u << "-" << v;
    }
  }
}

TEST(Spanner, PreservesConnectivity) {
  const CsrGraph graphs[] = {grid2d(15, 15), erdos_renyi(400, 2000, 5),
                             hypercube(8), barbell(15),
                             disjoint_copies(cycle(20), 3)};
  for (const CsrGraph& g : graphs) {
    const SpannerResult r = ldd_spanner(g, opts(0.3, 2));
    EXPECT_EQ(connected_components(r.spanner).count,
              connected_components(g).count);
  }
}

TEST(Spanner, ExactStretchBoundOnSmallGraphs) {
  // All-pairs check: every pair's spanner distance is within the
  // decomposition-implied bound of the true distance... the bound holds
  // per *edge*; composed over shortest paths it bounds all pairs.
  const CsrGraph g = erdos_renyi(60, 240, 7);
  const SpannerResult r = ldd_spanner(g, opts(0.3, 3));
  const std::uint32_t bound = r.stretch_bound();
  for (vertex_t u = 0; u < g.num_vertices(); ++u) {
    const auto dg = bfs_distances(g, u);
    const auto ds = bfs_distances(r.spanner, u);
    for (vertex_t v = 0; v < g.num_vertices(); ++v) {
      if (dg[v] == kInfDist || dg[v] == 0) continue;
      ASSERT_NE(ds[v], kInfDist);
      EXPECT_LE(ds[v], bound * dg[v]) << u << "->" << v;
    }
  }
}

TEST(Spanner, SparsifiesDenseGraphs) {
  const CsrGraph g = erdos_renyi(300, 8000, 11);
  const SpannerResult r = ldd_spanner(g, opts(0.1, 4));
  EXPECT_LT(r.spanner.num_edges(), g.num_edges() / 2);
  // Tree edges are at most n - k.
  EXPECT_LE(r.tree_edges,
            static_cast<edge_t>(g.num_vertices()) -
                r.decomposition.num_clusters());
}

TEST(Spanner, EdgeCountsAddUp) {
  const CsrGraph g = grid2d(12, 12);
  const SpannerResult r = ldd_spanner(g, opts(0.2, 5));
  EXPECT_EQ(r.spanner.num_edges(), r.tree_edges + r.bridge_edges);
}

TEST(Spanner, MeasuredStretchWithinBound) {
  const CsrGraph g = grid2d(20, 20);
  const SpannerResult r = ldd_spanner(g, opts(0.2, 6));
  const StretchSample s = measure_stretch(g, r.spanner, 30, 99);
  EXPECT_GT(s.pairs_measured, 0u);
  EXPECT_GE(s.mean_stretch, 1.0);
  EXPECT_LE(s.max_stretch, static_cast<double>(r.stretch_bound()));
}

TEST(Spanner, MultilevelAddsEdgesAndTightensStretch) {
  const CsrGraph g = erdos_renyi(250, 2500, 13);
  const SpannerResult single = ldd_spanner(g, opts(0.4, 7));
  const SpannerResult multi = ldd_spanner_multilevel(g, opts(0.4, 7), 3);
  EXPECT_GE(multi.spanner.num_edges(), single.spanner.num_edges());
  const StretchSample ss = measure_stretch(g, single.spanner, 25, 5);
  const StretchSample ms = measure_stretch(g, multi.spanner, 25, 5);
  EXPECT_LE(ms.mean_stretch, ss.mean_stretch + 0.25);
}

TEST(Spanner, TreeInputIsReturnedWhole) {
  // A tree has no redundant edges: the spanner must keep all of them.
  const CsrGraph g = complete_binary_tree(127);
  const SpannerResult r = ldd_spanner(g, opts(0.2, 8));
  EXPECT_EQ(r.spanner.num_edges(), g.num_edges());
}

}  // namespace
}  // namespace mpx
