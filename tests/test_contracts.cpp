// Death tests for the contract layer: public preconditions must abort
// with a readable message instead of corrupting state.
#include <gtest/gtest.h>

#include "core/partition.hpp"
#include "graph/builder.hpp"
#include "graph/csr_graph.hpp"
#include "graph/generators.hpp"
#include "support/assert.hpp"

namespace mpx {
namespace {

using ContractDeathTest = ::testing::Test;

TEST(ContractDeathTest, ExpectsAbortsWithMessage) {
  EXPECT_DEATH(MPX_EXPECTS(1 == 2), "precondition");
}

TEST(ContractDeathTest, EnsuresAbortsWithMessage) {
  EXPECT_DEATH(MPX_ENSURES(false), "postcondition");
}

TEST(ContractDeathTest, AssertAbortsWithMessage) {
  EXPECT_DEATH(MPX_ASSERT(false), "invariant");
}

TEST(ContractDeathTest, GraphRejectsOutOfRangeTarget) {
  std::vector<edge_t> offsets = {0, 1};
  std::vector<vertex_t> targets = {5};  // vertex 5 in a 1-vertex graph
  EXPECT_DEATH((CsrGraph(std::move(offsets), std::move(targets))),
               "precondition");
}

TEST(ContractDeathTest, GraphRejectsBrokenOffsets) {
  std::vector<edge_t> offsets = {0, 2, 1};  // not monotone
  std::vector<vertex_t> targets = {0};
  EXPECT_DEATH((CsrGraph(std::move(offsets), std::move(targets))),
               "");
}

TEST(ContractDeathTest, BuilderRejectsOutOfRangeEndpoint) {
  const std::vector<Edge> edges = {{0, 9}};
  EXPECT_DEATH((void)build_undirected(3, std::span<const Edge>(edges)),
               "precondition");
}

TEST(ContractDeathTest, WeightedBuilderRejectsNonPositiveWeight) {
  const std::vector<WeightedEdge> edges = {{0, 1, 0.0}};
  EXPECT_DEATH(
      (void)build_undirected_weighted(2, std::span<const WeightedEdge>(edges)),
      "precondition");
}

TEST(ContractDeathTest, PartitionRejectsBadBeta) {
  // Invalid beta is a recoverable caller error at the facade boundary
  // (std::invalid_argument), not a contract abort — a serving layer must
  // survive bad requests. See test_decomposer.cpp for the full matrix.
  const CsrGraph g = generators::path(4);
  PartitionOptions opt;
  opt.beta = 0.0;
  EXPECT_THROW((void)partition(g, opt), std::invalid_argument);
  opt.beta = 1.5;
  EXPECT_THROW((void)partition(g, opt), std::invalid_argument);
}

TEST(ContractDeathTest, NeighborsRejectsOutOfRangeVertex) {
  const CsrGraph g = generators::path(4);
  EXPECT_DEATH((void)g.neighbors(10), "precondition");
}

}  // namespace
}  // namespace mpx
