// Tests for plain-text edge-list I/O: parser edge cases, corpus-wide
// round-trips, bitwise write->read->write stability, and golden files
// pinning the on-disk format.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/snapshot.hpp"
#include "tests/support/fixtures.hpp"
#include "tests/support/golden.hpp"
#include "tests/support/temp_dir.hpp"

namespace mpx {
namespace {

using mpx::testing::golden_path;
using mpx::testing::NamedGraph;
using mpx::testing::read_file_or_fail;
using mpx::testing::serialize_edge_list;
using mpx::testing::TempDir;

TEST(Io, RoundTripUnweighted) {
  const CsrGraph g = generators::grid2d(6, 7);
  std::stringstream buffer;
  io::write_edge_list(buffer, g);
  const CsrGraph back = io::read_edge_list(buffer);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.num_edges(), g.num_edges());
  EXPECT_TRUE(std::equal(back.targets().begin(), back.targets().end(),
                         g.targets().begin()));
}

TEST(Io, RoundTripWeighted) {
  const std::vector<WeightedEdge> edges = {{0, 1, 1.5}, {1, 2, 2.25}};
  const WeightedCsrGraph g =
      build_undirected_weighted(3, std::span<const WeightedEdge>(edges));
  std::stringstream buffer;
  io::write_edge_list(buffer, g);
  const WeightedCsrGraph back = io::read_weighted_edge_list(buffer);
  EXPECT_EQ(back.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(back.arc_weights(0)[0], 1.5);
  EXPECT_DOUBLE_EQ(back.arc_weights(2)[0], 2.25);
}

TEST(Io, SkipsComments) {
  std::stringstream in("# a comment\n3 2\n# another\n0 1\n1 2\n");
  const CsrGraph g = io::read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Io, NormalizesDuplicatesAndLoops) {
  std::stringstream in("4 4\n0 1\n1 0\n2 2\n0 1\n");
  const CsrGraph g = io::read_edge_list(in);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Io, ThrowsOnMissingHeader) {
  std::stringstream in("# only comments\n");
  EXPECT_THROW((void)io::read_edge_list(in), std::runtime_error);
}

TEST(Io, ThrowsOnTruncatedEdges) {
  std::stringstream in("3 5\n0 1\n");
  EXPECT_THROW((void)io::read_edge_list(in), std::runtime_error);
}

TEST(Io, ThrowsOnOutOfRangeEndpoint) {
  std::stringstream in("3 1\n0 7\n");
  EXPECT_THROW((void)io::read_edge_list(in), std::runtime_error);
}

TEST(Io, ThrowsOnNonPositiveWeight) {
  std::stringstream in("3 1\n0 1 -2.0\n");
  EXPECT_THROW((void)io::read_weighted_edge_list(in), std::runtime_error);
}

TEST(Io, ThrowsOnUnopenablePath) {
  EXPECT_THROW((void)io::load_edge_list("/nonexistent/dir/graph.txt"),
               std::runtime_error);
}

TEST(Io, FileRoundTripsAcrossCorpus) {
  // save -> load -> identical CSR arrays, for every canonical shape
  // including the degenerate ones.
  TempDir tmp("io");
  for (const NamedGraph& ng : mpx::testing::small_graphs()) {
    SCOPED_TRACE(ng.name);
    const std::string path = tmp.file(ng.name + ".edges");
    io::save_edge_list(path, ng.graph);
    const CsrGraph back = io::load_edge_list(path);
    EXPECT_EQ(back.num_vertices(), ng.graph.num_vertices());
    ASSERT_EQ(back.num_arcs(), ng.graph.num_arcs());
    EXPECT_TRUE(std::equal(back.targets().begin(), back.targets().end(),
                           ng.graph.targets().begin()));
  }
}

TEST(Io, WriteReadWriteIsBitwiseStable) {
  // The serialized form is canonical: writing the parse of a written file
  // reproduces it byte for byte.
  for (const NamedGraph& ng : mpx::testing::small_graphs()) {
    SCOPED_TRACE(ng.name);
    const std::string first = serialize_edge_list(ng.graph);
    std::stringstream in(first);
    const std::string second = serialize_edge_list(io::read_edge_list(in));
    EXPECT_EQ(first, second);
  }
}

TEST(Io, ParseErrorIncludesLineNumber) {
  // Line 1 is a comment, line 2 the header, line 4 the bad edge.
  std::stringstream in("# comment\n5 3\n0 1\n0 nonsense\n2 3\n");
  try {
    (void)io::read_edge_list(in);
    FAIL() << "expected parse failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << e.what();
  }
}

TEST(Io, LoadErrorIncludesPathAndLineNumber) {
  TempDir tmp("io");
  const std::string path = tmp.file("broken.edges");
  {
    std::ofstream out(path);
    out << "3 2\n0 1\n0 99\n";  // endpoint out of range on line 3
  }
  try {
    (void)io::load_edge_list(path);
    FAIL() << "expected parse failure";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path + ":3:"), std::string::npos) << what;
    EXPECT_NE(what.find("out of range"), std::string::npos) << what;
  }
}

TEST(Io, WeightedLoadErrorIncludesPathAndLineNumber) {
  TempDir tmp("io");
  const std::string path = tmp.file("broken_weighted.edges");
  {
    std::ofstream out(path);
    out << "# mpx edge list (weighted)\n3 2\n0 1 1.5\n1 2 -4\n";
  }
  try {
    (void)io::load_weighted_edge_list(path);
    FAIL() << "expected parse failure";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path + ":4:"), std::string::npos) << what;
    EXPECT_NE(what.find("non-positive weight"), std::string::npos) << what;
  }
}

TEST(Io, DetectsAllFourFormats) {
  TempDir tmp("io");
  const CsrGraph g = generators::grid2d(3, 3);
  const WeightedCsrGraph wg = mpx::testing::grid3x3_weighted_reference();

  const std::string text = tmp.file("g.edges");
  io::save_edge_list(text, g);
  EXPECT_EQ(io::detect_graph_format(text), io::GraphFileFormat::kEdgeListText);

  const std::string wtext = tmp.file("g_weighted.edges");
  io::save_edge_list(wtext, wg);
  EXPECT_EQ(io::detect_graph_format(wtext),
            io::GraphFileFormat::kWeightedEdgeListText);

  const std::string snap = tmp.file("g.mpxs");
  io::save_snapshot(snap, g);
  EXPECT_EQ(io::detect_graph_format(snap), io::GraphFileFormat::kSnapshot);

  const std::string wsnap = tmp.file("g_weighted.mpxs");
  io::save_snapshot(wsnap, wg);
  EXPECT_EQ(io::detect_graph_format(wsnap),
            io::GraphFileFormat::kWeightedSnapshot);
}

TEST(Io, DetectsWeightedEmptyGraphByComment) {
  // No edge rows to count columns of; the writer's comment disambiguates.
  TempDir tmp("io");
  const std::string path = tmp.file("empty_weighted.edges");
  io::save_edge_list(path, WeightedCsrGraph{});
  EXPECT_EQ(io::detect_graph_format(path),
            io::GraphFileFormat::kWeightedEdgeListText);
}

TEST(Io, LoadGraphAutoDetects) {
  TempDir tmp("io");
  const CsrGraph g = generators::grid2d(4, 5);
  const std::string text = tmp.file("auto.edges");
  const std::string snap = tmp.file("auto.mpxs");
  io::save_edge_list(text, g);
  io::save_snapshot(snap, g);
  for (const std::string& path : {text, snap}) {
    SCOPED_TRACE(path);
    const CsrGraph back = io::load_graph(path);
    ASSERT_EQ(back.num_arcs(), g.num_arcs());
    EXPECT_TRUE(std::equal(back.targets().begin(), back.targets().end(),
                           g.targets().begin()));
  }
}

TEST(Io, LoadGraphRejectsWeightednessMismatch) {
  TempDir tmp("io");
  const WeightedCsrGraph wg = mpx::testing::grid3x3_weighted_reference();
  const std::string wtext = tmp.file("w.edges");
  io::save_edge_list(wtext, wg);
  EXPECT_THROW((void)io::load_graph(wtext), std::runtime_error);

  const CsrGraph g = generators::grid2d(3, 3);
  const std::string text = tmp.file("u.edges");
  io::save_edge_list(text, g);
  EXPECT_THROW((void)io::load_weighted_graph(text), std::runtime_error);
}

TEST(Io, LoadWeightedGraphAutoDetects) {
  TempDir tmp("io");
  const WeightedCsrGraph wg = mpx::testing::grid3x3_weighted_reference();
  const std::string wtext = tmp.file("w.edges");
  const std::string wsnap = tmp.file("w.mpxs");
  io::save_edge_list(wtext, wg);
  io::save_snapshot(wsnap, wg);
  for (const std::string& path : {wtext, wsnap}) {
    SCOPED_TRACE(path);
    const WeightedCsrGraph back = io::load_weighted_graph(path);
    ASSERT_EQ(back.num_arcs(), wg.num_arcs());
    EXPECT_TRUE(std::equal(back.weights().begin(), back.weights().end(),
                           wg.weights().begin()));
  }
}

TEST(Io, GoldenFileMatchesWriter) {
  // Pins the on-disk format. If this fails because the format deliberately
  // changed, regenerate with: build/regen_golden (see tests/golden/).
  const CsrGraph g = generators::grid2d(3, 3);
  EXPECT_EQ(serialize_edge_list(g),
            read_file_or_fail(golden_path("grid_3x3.edges")));
}

TEST(Io, GoldenFileParsesBackToSameGraph) {
  const CsrGraph g = generators::grid2d(3, 3);
  const CsrGraph back = io::load_edge_list(golden_path("grid_3x3.edges"));
  ASSERT_EQ(back.num_vertices(), g.num_vertices());
  ASSERT_EQ(back.num_arcs(), g.num_arcs());
  EXPECT_TRUE(std::equal(back.targets().begin(), back.targets().end(),
                         g.targets().begin()));
}

}  // namespace
}  // namespace mpx
