// Tests for the BFS engines: sequential reference, parallel top-down and
// direction-optimizing variants must all agree on distances.
#include <gtest/gtest.h>

#include <vector>

#include "graph/builder.hpp"
#include "bfs/parallel_bfs.hpp"
#include "bfs/sequential_bfs.hpp"
#include "graph/generators.hpp"
#include "parallel/thread_env.hpp"

namespace mpx {
namespace {

using namespace mpx::generators;

TEST(SequentialBfs, PathDistances) {
  const CsrGraph g = path(6);
  const auto dist = bfs_distances(g, 2);
  EXPECT_EQ(dist, (std::vector<std::uint32_t>{2, 1, 0, 1, 2, 3}));
}

TEST(SequentialBfs, UnreachableVerticesAreInf) {
  const CsrGraph g = disjoint_copies(path(3), 2);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(dist[3], kInfDist);
  EXPECT_EQ(dist[5], kInfDist);
}

TEST(SequentialBfs, MultiSourceTakesNearest) {
  const CsrGraph g = path(10);
  const std::vector<vertex_t> sources = {0, 9};
  const auto dist = bfs_distances_multi(g, sources);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[9], 0u);
  EXPECT_EQ(dist[4], 4u);
  EXPECT_EQ(dist[5], 4u);
}

TEST(SequentialBfs, DuplicateSourcesAreHarmless) {
  const CsrGraph g = cycle(8);
  const std::vector<vertex_t> sources = {3, 3, 3};
  const auto dist = bfs_distances_multi(g, sources);
  EXPECT_EQ(dist[3], 0u);
  EXPECT_EQ(dist[7], 4u);
}

TEST(BfsTree, ParentsFormShortestPathTree) {
  const CsrGraph g = grid2d(5, 5);
  const BfsTree tree = bfs_tree(g, 0);
  EXPECT_EQ(tree.parent[0], kInvalidVertex);
  for (vertex_t v = 1; v < g.num_vertices(); ++v) {
    ASSERT_NE(tree.parent[v], kInvalidVertex);
    EXPECT_EQ(tree.dist[v], tree.dist[tree.parent[v]] + 1);
    EXPECT_TRUE(g.has_edge(v, tree.parent[v]));
  }
}

std::vector<CsrGraph> test_graphs() {
  std::vector<CsrGraph> graphs;
  graphs.push_back(path(500));
  graphs.push_back(cycle(333));
  graphs.push_back(grid2d(20, 30));
  graphs.push_back(complete(60));
  graphs.push_back(star(200));
  graphs.push_back(complete_binary_tree(255));
  graphs.push_back(hypercube(9));
  graphs.push_back(erdos_renyi(400, 900, 7));
  graphs.push_back(rmat(9, 4.0, 11));
  graphs.push_back(disjoint_copies(grid2d(6, 6), 4));
  graphs.push_back(barbell(15));
  return graphs;
}

TEST(ParallelBfs, TopDownMatchesSequentialAcrossFamilies) {
  for (const CsrGraph& g : test_graphs()) {
    const auto expected = bfs_distances(g, 0);
    const ParallelBfsResult got =
        parallel_bfs(g, 0, BfsStrategy::kTopDown);
    EXPECT_EQ(got.dist, expected);
  }
}

TEST(ParallelBfs, DirectionOptimizingMatchesSequentialAcrossFamilies) {
  for (const CsrGraph& g : test_graphs()) {
    const auto expected = bfs_distances(g, 0);
    const ParallelBfsResult got =
        parallel_bfs(g, 0, BfsStrategy::kDirectionOptimizing);
    EXPECT_EQ(got.dist, expected);
  }
}

TEST(ParallelBfs, ParentsAreConsistent) {
  for (const auto strategy :
       {BfsStrategy::kTopDown, BfsStrategy::kDirectionOptimizing}) {
    const CsrGraph g = grid2d(17, 23);
    const ParallelBfsResult r = parallel_bfs(g, 5, strategy);
    for (vertex_t v = 0; v < g.num_vertices(); ++v) {
      if (v == 5 || r.dist[v] == kInfDist) continue;
      ASSERT_NE(r.parent[v], kInvalidVertex);
      EXPECT_EQ(r.dist[v], r.dist[r.parent[v]] + 1);
      EXPECT_TRUE(g.has_edge(v, r.parent[v]));
    }
  }
}

TEST(ParallelBfs, RoundsEqualEccentricityPlusOne) {
  const CsrGraph g = path(100);
  const ParallelBfsResult r = parallel_bfs(g, 0);
  // 99 levels expanded plus the final empty check.
  EXPECT_EQ(r.rounds, 100u);
}

TEST(ParallelBfs, MultiSourceMatchesSequential) {
  const CsrGraph g = grid2d(25, 25);
  const std::vector<vertex_t> sources = {0, 624, 300};
  const auto expected = bfs_distances_multi(g, sources);
  const ParallelBfsResult got = parallel_bfs_multi(g, sources);
  EXPECT_EQ(got.dist, expected);
}

TEST(ParallelBfs, DistancesIndependentOfThreadCount) {
  const CsrGraph g = rmat(10, 6.0, 3);
  std::vector<std::uint32_t> with_one;
  std::vector<std::uint32_t> with_max;
  {
    ScopedNumThreads guard(1);
    with_one = parallel_bfs(g, 0).dist;
  }
  {
    ScopedNumThreads guard(max_threads());
    with_max = parallel_bfs(g, 0).dist;
  }
  EXPECT_EQ(with_one, with_max);
}

TEST(ParallelBfs, IsolatedSourceTerminatesImmediately) {
  const std::vector<Edge> edges = {{1, 2}};
  const CsrGraph g = build_undirected(3, std::span<const Edge>(edges));
  const ParallelBfsResult r = parallel_bfs(g, 0);
  EXPECT_EQ(r.dist[0], 0u);
  EXPECT_EQ(r.dist[1], kInfDist);
  EXPECT_EQ(r.dist[2], kInfDist);
}

}  // namespace
}  // namespace mpx
