// Randomized property tests ("fuzz-lite"): the parallel primitives and the
// graph builder against their std:: / sequential references over many
// random shapes and sizes. Complements the hand-picked cases in the other
// suites with breadth.
//
// Seeds come from the shared deterministic corpus (tests/support/property.hpp)
// so every ctest run fuzzes the exact same cases; replay one case with
// MPX_TEST_SEED=<n> in the environment.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "bfs/sequential_bfs.hpp"
#include "bfs/parallel_bfs.hpp"
#include "graph/builder.hpp"
#include "graph/snapshot.hpp"
#include "parallel/pack.hpp"
#include "parallel/reduce.hpp"
#include "parallel/scan.hpp"
#include "parallel/sort.hpp"
#include "core/partition.hpp"
#include "support/random.hpp"
#include "tests/support/golden.hpp"
#include "tests/support/invariants.hpp"
#include "tests/support/property.hpp"
#include "tests/support/temp_dir.hpp"

namespace mpx {
namespace {

class FuzzCase : public ::testing::TestWithParam<std::uint64_t> {};

std::size_t random_size(Xoshiro256pp& rng) {
  // Sizes spanning the serial/parallel grain boundary and odd values.
  const std::size_t buckets[] = {0, 1, 3, 100, 2047, 2048, 2049, 70000};
  const std::size_t base = buckets[rng.next_below(8)];
  return base + static_cast<std::size_t>(rng.next_below(17));
}

TEST_P(FuzzCase, ScanMatchesStdExclusiveScan) {
  Xoshiro256pp rng(GetParam());
  for (int round = 0; round < 6; ++round) {
    const std::size_t n = random_size(rng);
    std::vector<std::uint64_t> data(n);
    for (auto& x : data) x = rng.next_below(1000);
    std::vector<std::uint64_t> expected(n);
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      expected[i] = acc;
      acc += data[i];
    }
    std::vector<std::uint64_t> got = data;
    const std::uint64_t total =
        exclusive_scan_inplace(std::span<std::uint64_t>(got));
    ASSERT_EQ(total, acc) << "n=" << n;
    ASSERT_EQ(got, expected) << "n=" << n;
  }
}

TEST_P(FuzzCase, SortMatchesStdSort) {
  Xoshiro256pp rng(GetParam() ^ 0xabcdef);
  for (int round = 0; round < 5; ++round) {
    const std::size_t n = random_size(rng);
    std::vector<std::uint64_t> data(n);
    for (auto& x : data) x = rng.next_below(50);  // heavy duplicates
    std::vector<std::uint64_t> expected = data;
    std::sort(expected.begin(), expected.end());
    parallel_sort(std::span<std::uint64_t>(data));
    ASSERT_EQ(data, expected) << "n=" << n;
  }
}

TEST_P(FuzzCase, PackMatchesStdCopyIf) {
  Xoshiro256pp rng(GetParam() ^ 0x777);
  for (int round = 0; round < 5; ++round) {
    const std::size_t n = random_size(rng);
    std::vector<std::uint8_t> keep(n);
    for (auto& k : keep) k = rng.next_below(2) != 0 ? 1 : 0;
    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < n; ++i) {
      if (keep[i]) expected.push_back(i);
    }
    const auto got =
        pack_indices(n, [&](std::size_t i) { return keep[i] != 0; });
    ASSERT_EQ(got, expected) << "n=" << n;
  }
}

TEST_P(FuzzCase, ReduceMatchesStdAccumulate) {
  Xoshiro256pp rng(GetParam() ^ 0x5151);
  for (int round = 0; round < 5; ++round) {
    const std::size_t n = random_size(rng);
    std::vector<std::uint64_t> data(n);
    for (auto& x : data) x = rng.next_below(1 << 20);
    const std::uint64_t expected =
        std::accumulate(data.begin(), data.end(), std::uint64_t{0});
    const std::uint64_t got = parallel_sum<std::uint64_t>(
        std::size_t{0}, n, [&](std::size_t i) { return data[i]; });
    ASSERT_EQ(got, expected) << "n=" << n;
  }
}

TEST_P(FuzzCase, BuilderIsIdempotentOnRandomEdgeSoup) {
  Xoshiro256pp rng(GetParam() ^ 0x1234);
  const vertex_t n = 2 + static_cast<vertex_t>(rng.next_below(60));
  const std::size_t m = rng.next_below(200);
  std::vector<Edge> soup;
  for (std::size_t i = 0; i < m; ++i) {
    soup.push_back({static_cast<vertex_t>(rng.next_below(n)),
                    static_cast<vertex_t>(rng.next_below(n))});
  }
  const CsrGraph g = build_undirected(n, std::span<const Edge>(soup));
  ASSERT_TRUE(g.is_symmetric());
  // Rebuilding from the canonical edge list reproduces the graph.
  const std::vector<Edge> canonical = edge_list(g);
  const CsrGraph g2 = build_undirected(n, std::span<const Edge>(canonical));
  ASSERT_EQ(g2.num_edges(), g.num_edges());
  ASSERT_TRUE(std::equal(g2.targets().begin(), g2.targets().end(),
                         g.targets().begin()));
  // Degrees count each neighbor once.
  for (vertex_t v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(v);
    ASSERT_TRUE(std::adjacent_find(nbrs.begin(), nbrs.end()) == nbrs.end());
  }
}

TEST_P(FuzzCase, ParallelBfsMatchesSequentialOnRandomGraphs) {
  Xoshiro256pp rng(GetParam() ^ 0x9e37);
  const vertex_t n = 2 + static_cast<vertex_t>(rng.next_below(300));
  const std::size_t m = rng.next_below(4 * static_cast<std::size_t>(n));
  std::vector<Edge> soup;
  for (std::size_t i = 0; i < m; ++i) {
    soup.push_back({static_cast<vertex_t>(rng.next_below(n)),
                    static_cast<vertex_t>(rng.next_below(n))});
  }
  const CsrGraph g = build_undirected(n, std::span<const Edge>(soup));
  const vertex_t source = static_cast<vertex_t>(rng.next_below(n));
  const auto expected = bfs_distances(g, source);
  ASSERT_EQ(parallel_bfs(g, source, BfsStrategy::kTopDown).dist, expected);
  ASSERT_EQ(parallel_bfs(g, source, BfsStrategy::kDirectionOptimizing).dist,
            expected);
}

TEST_P(FuzzCase, PartitionInvariantsOnRandomGraphs) {
  Xoshiro256pp rng(GetParam() ^ 0xdecaf);
  for (int round = 0; round < 4; ++round) {
    const CsrGraph g = mpx::testing::random_graph(rng, 400);
    PartitionOptions opt;
    opt.beta = 0.05 + 0.45 * rng.next_double();
    opt.seed = rng();
    const Decomposition dec = partition(g, opt);
    ASSERT_TRUE(mpx::testing::check_decomposition_invariants(
        dec, g, {.beta = opt.beta}))
        << "n=" << g.num_vertices() << " beta=" << opt.beta
        << " seed=" << opt.seed;
  }
}

TEST_P(FuzzCase, SnapshotReadersThrowOrSucceedOnMutatedBytes) {
  // Generator-driven decoder fuzzing over the checked-in v2 snapshot seed
  // corpus (tests/golden/*_v2*.mpxs, hot and cold, weighted and not): a
  // burst of random mutations — byte flips, truncations, extensions,
  // splices — is applied to a corpus member and every reader entry point
  // must either succeed or throw std::runtime_error. Any crash, abort or
  // foreign exception on arbitrary bytes is a format-conformance bug.
  const char* corpus[] = {"grid_3x3_v2.mpxs", "grid_3x3_v2_cold.mpxs",
                          "grid_3x3_weighted_v2_cold.mpxs",
                          "grid_16x16_v2_cold.mpxs"};
  mpx::testing::TempDir tmp("fuzz-snapshot");
  const std::string path = tmp.file("mutant.mpxs");
  Xoshiro256pp rng(GetParam() ^ 0x5a9);
  for (int round = 0; round < 24; ++round) {
    std::string bytes = mpx::testing::read_file_or_fail(
        mpx::testing::golden_path(corpus[rng.next_below(4)]));
    const std::size_t mutations = 1 + rng.next_below(8);
    for (std::size_t i = 0; i < mutations && !bytes.empty(); ++i) {
      switch (rng.next_below(4)) {
        case 0:  // bit flip
          bytes[rng.next_below(bytes.size())] ^=
              static_cast<char>(1u << rng.next_below(8));
          break;
        case 1:  // byte overwrite
          bytes[rng.next_below(bytes.size())] =
              static_cast<char>(rng.next_below(256));
          break;
        case 2:  // truncation
          bytes.resize(rng.next_below(bytes.size() + 1));
          break;
        default:  // extension with junk
          bytes.append(1 + rng.next_below(64),
                       static_cast<char>(rng.next_below(256)));
          break;
      }
    }
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    const auto probe = [&](auto&& fn) {
      try {
        fn();
      } catch (const std::runtime_error&) {
        // Rejection is the expected outcome for most mutants.
      }
    };
    probe([&] { (void)io::read_snapshot_info(path); });
    probe([&] { (void)io::verify_snapshot(path); });
    probe([&] { (void)io::verify_snapshot_deep(path); });
    probe([&] { (void)io::load_snapshot(path); });
    probe([&] { (void)io::load_weighted_snapshot(path); });
    probe([&] { (void)io::map_snapshot(path); });
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FuzzCase,
    ::testing::ValuesIn(mpx::testing::replay_or(mpx::testing::seed_corpus(8))));

}  // namespace
}  // namespace mpx
