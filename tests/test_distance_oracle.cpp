// Tests for the decomposition-based approximate distance oracle.
#include <gtest/gtest.h>

#include "apps/distance_oracle.hpp"
#include "bfs/sequential_bfs.hpp"
#include "graph/generators.hpp"

namespace mpx {
namespace {

using namespace mpx::generators;

PartitionOptions opts(double beta, std::uint64_t seed) {
  PartitionOptions o;
  o.beta = beta;
  o.seed = seed;
  return o;
}

TEST(DistanceOracle, NeverUnderestimates) {
  // Every estimate is a realized path, so it upper-bounds the true
  // distance. Check exhaustively on small graphs.
  const CsrGraph graphs[] = {grid2d(8, 8), cycle(40),
                             erdos_renyi(80, 240, 3), barbell(8)};
  for (const CsrGraph& g : graphs) {
    const DistanceOracle oracle(g, opts(0.2, 5));
    for (vertex_t u = 0; u < g.num_vertices(); ++u) {
      const auto exact = bfs_distances(g, u);
      for (vertex_t v = 0; v < g.num_vertices(); ++v) {
        if (exact[v] == kInfDist) continue;
        EXPECT_GE(oracle.estimate(u, v), exact[v]) << u << "->" << v;
      }
    }
  }
}

TEST(DistanceOracle, SelfDistanceIsZeroAndSymmetric) {
  const CsrGraph g = grid2d(10, 10);
  const DistanceOracle oracle(g, opts(0.2, 2));
  EXPECT_EQ(oracle.estimate(7, 7), 0u);
  for (vertex_t u = 0; u < 20; ++u) {
    for (vertex_t v = 0; v < 20; ++v) {
      EXPECT_EQ(oracle.estimate(u, v), oracle.estimate(v, u));
    }
  }
}

TEST(DistanceOracle, AdjacentPairEstimatesBoundedByPieceDiameters) {
  // For an edge (u, v): same piece => estimate <= 2r (through the center);
  // different pieces => estimate <= r + (r + 1 + r) + r = 4r + 1 (own
  // radii plus the cheapest center-graph edge).
  const CsrGraph g = grid2d(20, 20);
  const DistanceOracle oracle(g, opts(0.15, 7));
  std::uint32_t max_radius = 0;
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    max_radius =
        std::max(max_radius, oracle.decomposition().dist_to_center(v));
  }
  for (vertex_t u = 0; u < g.num_vertices(); u += 13) {
    for (const vertex_t v : g.neighbors(u)) {
      EXPECT_LE(oracle.estimate(u, v), 4 * max_radius + 1);
    }
  }
}

TEST(DistanceOracle, CrossComponentIsInfinite) {
  const CsrGraph g = disjoint_copies(path(5), 2);
  const DistanceOracle oracle(g, opts(0.3, 1));
  EXPECT_EQ(oracle.estimate(0, 7), kInfDist);
  EXPECT_NE(oracle.estimate(0, 4), kInfDist);
}

TEST(DistanceOracle, QualityMeasurementsAreSane) {
  const CsrGraph g = grid2d(25, 25);
  const DistanceOracle oracle(g, opts(0.1, 9));
  const OracleQuality q = measure_oracle(g, oracle, 30, 4);
  EXPECT_GT(q.pairs_measured, 0u);
  EXPECT_EQ(q.underestimates, 0u);
  EXPECT_GE(q.mean_stretch, 1.0);
  EXPECT_LT(q.mean_stretch, 12.0);  // loose: pieces are shallow at beta=0.1
}

TEST(DistanceOracle, FinerBetaImprovesSpaceCoarserImprovesAccuracy) {
  // Smaller beta -> fewer landmarks (smaller table) but looser estimates;
  // larger beta -> more landmarks, tighter estimates.
  const CsrGraph g = grid2d(30, 30);
  const DistanceOracle coarse(g, opts(0.05, 3));
  const DistanceOracle fine(g, opts(0.4, 3));
  EXPECT_LT(coarse.num_landmarks(), fine.num_landmarks());
  EXPECT_LT(coarse.table_bytes(), fine.table_bytes());
  const OracleQuality qc = measure_oracle(g, coarse, 25, 8);
  const OracleQuality qf = measure_oracle(g, fine, 25, 8);
  EXPECT_LE(qf.mean_stretch, qc.mean_stretch + 0.5);
}

TEST(DistanceOracle, ExactOnSingletonPieces) {
  // beta = 1 makes nearly every vertex its own landmark; estimates through
  // the center graph then track true distances closely on a path.
  const CsrGraph g = path(30);
  const DistanceOracle oracle(g, opts(1.0, 6));
  const auto exact = bfs_distances(g, 0);
  for (vertex_t v = 1; v < 30; ++v) {
    EXPECT_LE(oracle.estimate(0, v), 3 * exact[v] + 4);
  }
}

}  // namespace
}  // namespace mpx
