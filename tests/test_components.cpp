// Tests for connected components: the parallel label-propagation kernel
// must agree with the sequential BFS sweep on every family.
#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"

namespace mpx {
namespace {

using namespace mpx::generators;

TEST(ComponentsSequential, SingleComponentOnConnectedGraphs) {
  EXPECT_EQ(connected_components_sequential(path(50)).count, 1u);
  EXPECT_EQ(connected_components_sequential(cycle(50)).count, 1u);
  EXPECT_EQ(connected_components_sequential(grid2d(7, 9)).count, 1u);
}

TEST(ComponentsSequential, CountsIsolatedVertices) {
  const std::vector<Edge> edges = {{0, 1}};
  const CsrGraph g = build_undirected(5, std::span<const Edge>(edges));
  const Components c = connected_components_sequential(g);
  EXPECT_EQ(c.count, 4u);  // {0,1} plus three singletons
  EXPECT_EQ(c.label[0], c.label[1]);
  EXPECT_NE(c.label[2], c.label[3]);
}

TEST(ComponentsSequential, LabelsAreComponentMinima) {
  const CsrGraph g = disjoint_copies(cycle(4), 3);
  const Components c = connected_components_sequential(g);
  EXPECT_EQ(c.label[0], 0u);
  EXPECT_EQ(c.label[5], 4u);
  EXPECT_EQ(c.label[10], 8u);
}

TEST(ComponentsParallel, MatchesSequentialOnFamilies) {
  const CsrGraph graphs[] = {
      path(200),          cycle(111),
      grid2d(13, 17),     complete(40),
      star(99),           complete_binary_tree(127),
      hypercube(7),       erdos_renyi(300, 500, 3),
      rmat(8, 3.0, 4),    disjoint_copies(grid2d(5, 5), 7),
      barbell(12),        caterpillar(20, 3),
  };
  for (const CsrGraph& g : graphs) {
    const Components seq = connected_components_sequential(g);
    const Components par = connected_components(g);
    EXPECT_EQ(par.count, seq.count);
    EXPECT_EQ(par.label, seq.label);  // both canonical (min ids)
  }
}

TEST(ComponentsParallel, EmptyAndSingleton) {
  const CsrGraph empty;
  EXPECT_EQ(connected_components(empty).count, 0u);
  const std::vector<Edge> none;
  const CsrGraph one = build_undirected(1, std::span<const Edge>(none));
  EXPECT_EQ(connected_components(one).count, 1u);
}

TEST(IsConnected, Basics) {
  EXPECT_TRUE(is_connected(path(10)));
  EXPECT_FALSE(is_connected(disjoint_copies(path(5), 2)));
  const CsrGraph empty;
  EXPECT_TRUE(is_connected(empty));
}

TEST(ComponentsParallel, ScalesToLargerGraphs) {
  const CsrGraph g = disjoint_copies(grid2d(40, 40), 13);
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 13u);
}

}  // namespace
}  // namespace mpx
