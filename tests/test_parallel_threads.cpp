// Thread-count sweep for the parallel primitives: scan, reduce, sort and
// pack must return the bitwise-identical answer at 1, 2 and 8 threads (the
// library's determinism contract — results are pure functions of the input,
// never of the schedule). Inputs span the serial/parallel grain boundary so
// both code paths run at every width.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "bfs/multi_source_bfs.hpp"
#include "core/shifts.hpp"
#include "parallel/pack.hpp"
#include "parallel/reduce.hpp"
#include "parallel/scan.hpp"
#include "parallel/sort.hpp"
#include "parallel/thread_env.hpp"
#include "support/random.hpp"
#include "tests/support/property.hpp"

namespace mpx {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

// Sizes straddling kSerialGrain (2048) so every width exercises both the
// serial short-circuit and the forked path.
constexpr std::size_t kSizes[] = {0, 1, 7, 2047, 2048, 4097, 50000};

std::vector<std::uint64_t> random_data(std::size_t n, std::uint64_t seed) {
  Xoshiro256pp rng(seed);
  std::vector<std::uint64_t> data(n);
  for (auto& x : data) x = rng.next_below(1u << 20);
  return data;
}

TEST(ParallelThreads, ScanMatchesSequentialAtEveryWidth) {
  for (const std::size_t n : kSizes) {
    const std::vector<std::uint64_t> data = random_data(n, 0xa0 + n);
    std::vector<std::uint64_t> expected(n);
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      expected[i] = acc;
      acc += data[i];
    }
    for (const int threads : kThreadCounts) {
      SCOPED_TRACE("n=" + std::to_string(n) +
                   " threads=" + std::to_string(threads));
      ScopedNumThreads guard(threads);
      std::vector<std::uint64_t> got = data;
      const std::uint64_t total =
          exclusive_scan_inplace(std::span<std::uint64_t>(got));
      EXPECT_EQ(total, acc);
      EXPECT_EQ(got, expected);
    }
  }
}

TEST(ParallelThreads, ReduceMatchesSequentialAtEveryWidth) {
  for (const std::size_t n : kSizes) {
    const std::vector<std::uint64_t> data = random_data(n, 0xb0 + n);
    const std::uint64_t sum =
        std::accumulate(data.begin(), data.end(), std::uint64_t{0});
    const std::uint64_t max =
        n == 0 ? 0 : *std::max_element(data.begin(), data.end());
    for (const int threads : kThreadCounts) {
      SCOPED_TRACE("n=" + std::to_string(n) +
                   " threads=" + std::to_string(threads));
      ScopedNumThreads guard(threads);
      EXPECT_EQ(parallel_sum<std::uint64_t>(
                    std::size_t{0}, n, [&](std::size_t i) { return data[i]; }),
                sum);
      EXPECT_EQ(parallel_max<std::uint64_t>(
                    std::size_t{0}, n, std::uint64_t{0},
                    [&](std::size_t i) { return data[i]; }),
                max);
      EXPECT_EQ(parallel_count_if(std::size_t{0}, n,
                                  [&](std::size_t i) { return data[i] % 2; }),
                static_cast<std::size_t>(std::count_if(
                    data.begin(), data.end(),
                    [](std::uint64_t x) { return x % 2; })));
    }
  }
}

TEST(ParallelThreads, SortMatchesSequentialAtEveryWidth) {
  for (const std::size_t n : kSizes) {
    // Heavy duplicates stress merge/partition tie handling.
    Xoshiro256pp rng(0xc0 + n);
    std::vector<std::uint64_t> data(n);
    for (auto& x : data) x = rng.next_below(64);
    std::vector<std::uint64_t> expected = data;
    std::sort(expected.begin(), expected.end());
    for (const int threads : kThreadCounts) {
      SCOPED_TRACE("n=" + std::to_string(n) +
                   " threads=" + std::to_string(threads));
      ScopedNumThreads guard(threads);
      std::vector<std::uint64_t> got = data;
      parallel_sort(std::span<std::uint64_t>(got));
      EXPECT_EQ(got, expected);
    }
  }
}

TEST(ParallelThreads, PackMatchesSequentialAtEveryWidth) {
  for (const std::size_t n : kSizes) {
    const std::vector<std::uint64_t> data = random_data(n, 0xd0 + n);
    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < n; ++i) {
      if (data[i] % 3 == 0) expected.push_back(i);
    }
    for (const int threads : kThreadCounts) {
      SCOPED_TRACE("n=" + std::to_string(n) +
                   " threads=" + std::to_string(threads));
      ScopedNumThreads guard(threads);
      EXPECT_EQ(
          pack_indices(n, [&](std::size_t i) { return data[i] % 3 == 0; }),
          expected);
      EXPECT_EQ(pack_map<std::uint64_t>(
                    n, [&](std::size_t i) { return data[i] % 3 == 0; },
                    [&](std::size_t i) { return data[i] * 2; }),
                [&] {
                  std::vector<std::uint64_t> out;
                  for (const std::size_t i : expected) out.push_back(data[i] * 2);
                  return out;
                }());
    }
  }
}

TEST(ParallelThreads, TraversalEnginesMatchSequentialAtEveryWidth) {
  // The traversal engine's contract doubled: for a fixed seed the result
  // must be invariant across thread widths AND across engines (push /
  // pull / auto). The reference is the push engine at one thread.
  mpx::testing::for_each_seed(3, [](std::uint64_t seed) {
    Xoshiro256pp rng(seed);
    // Big enough to cross the engine's serial-round cutoff so parallel
    // phases actually fork at widths > 1.
    const CsrGraph g = mpx::testing::random_connected_graph(rng, 4000, 8.0);
    PartitionOptions popt;
    popt.beta = 0.2;
    popt.seed = seed;
    const Shifts shifts = generate_shifts(g.num_vertices(), popt);

    std::vector<vertex_t> ref_owner;
    std::vector<std::uint32_t> ref_settle;
    {
      ScopedNumThreads guard(1);
      const MultiSourceBfsResult r = delayed_multi_source_bfs(
          g, shifts.start_round, shifts.rank, kInfDist,
          TraversalEngine::kPush);
      ref_owner = r.owner;
      ref_settle = r.settle_round;
    }
    for (const int threads : kThreadCounts) {
      for (const TraversalEngine engine :
           {TraversalEngine::kPush, TraversalEngine::kPull,
            TraversalEngine::kAuto}) {
        SCOPED_TRACE("threads=" + std::to_string(threads) + " engine=" +
                     std::string(traversal_engine_name(engine)));
        ScopedNumThreads guard(threads);
        const MultiSourceBfsResult r = delayed_multi_source_bfs(
            g, shifts.start_round, shifts.rank, kInfDist, engine);
        EXPECT_EQ(r.owner, ref_owner);
        EXPECT_EQ(r.settle_round, ref_settle);
      }
    }
  });
}

TEST(ParallelThreads, ResultsIdenticalAcrossWidthsOnRandomInputs) {
  // Property form: for random shapes, every width agrees with width 1.
  mpx::testing::for_each_seed(4, [](std::uint64_t seed) {
    Xoshiro256pp rng(seed);
    const std::size_t n = rng.next_below(30000);
    std::vector<std::uint64_t> data(n);
    for (auto& x : data) x = rng();

    std::vector<std::uint64_t> scan1, sorted1;
    std::uint64_t sum1 = 0;
    {
      ScopedNumThreads guard(1);
      scan1 = data;
      sum1 = exclusive_scan_inplace(std::span<std::uint64_t>(scan1));
      sorted1 = data;
      parallel_sort(std::span<std::uint64_t>(sorted1));
    }
    for (const int threads : {2, 8}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      ScopedNumThreads guard(threads);
      std::vector<std::uint64_t> scan = data;
      EXPECT_EQ(exclusive_scan_inplace(std::span<std::uint64_t>(scan)), sum1);
      EXPECT_EQ(scan, scan1);
      std::vector<std::uint64_t> sorted = data;
      parallel_sort(std::span<std::uint64_t>(sorted));
      EXPECT_EQ(sorted, sorted1);
    }
  });
}

}  // namespace
}  // namespace mpx
