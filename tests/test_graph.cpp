// Tests for the CSR graph types and the edge-list builder.
#include <gtest/gtest.h>

#include <vector>

#include "graph/builder.hpp"
#include "graph/csr_graph.hpp"

namespace mpx {
namespace {

CsrGraph triangle() {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}};
  return build_undirected(3, std::span<const Edge>(edges));
}

TEST(CsrGraph, EmptyGraph) {
  const CsrGraph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.num_arcs(), 0u);
}

TEST(CsrGraph, TriangleBasics) {
  const CsrGraph g = triangle();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.num_arcs(), 6u);
  for (vertex_t v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(g.is_symmetric());
}

TEST(CsrGraph, NeighborsAreSortedAndCorrect) {
  const std::vector<Edge> edges = {{0, 3}, {0, 1}, {0, 2}};
  const CsrGraph g = build_undirected(4, std::span<const Edge>(edges));
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 1u);
  EXPECT_EQ(nbrs[1], 2u);
  EXPECT_EQ(nbrs[2], 3u);
}

TEST(CsrGraph, HasEdge) {
  const CsrGraph g = triangle();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 0));
  const std::vector<Edge> edges = {{0, 1}};
  const CsrGraph h = build_undirected(3, std::span<const Edge>(edges));
  EXPECT_FALSE(h.has_edge(0, 2));
  EXPECT_FALSE(h.has_edge(1, 2));
}

TEST(CsrGraph, ArcAccessors) {
  const CsrGraph g = triangle();
  EXPECT_EQ(g.arc_begin(0), 0u);
  EXPECT_EQ(g.arc_begin(1), 2u);
  EXPECT_EQ(g.arc_target(0), 1u);
  EXPECT_EQ(g.arc_target(1), 2u);
}

TEST(CsrGraph, IsolatedVerticesHaveNoNeighbors) {
  const std::vector<Edge> edges = {{0, 1}};
  const CsrGraph g = build_undirected(5, std::span<const Edge>(edges));
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.degree(3), 0u);
  EXPECT_TRUE(g.neighbors(3).empty());
}

TEST(Builder, DropsSelfLoops) {
  const std::vector<Edge> edges = {{0, 0}, {0, 1}, {1, 1}};
  const CsrGraph g = build_undirected(2, std::span<const Edge>(edges));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.is_symmetric());
}

TEST(Builder, DeduplicatesParallelEdges) {
  const std::vector<Edge> edges = {{0, 1}, {1, 0}, {0, 1}, {0, 1}};
  const CsrGraph g = build_undirected(2, std::span<const Edge>(edges));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(Builder, EmptyEdgeList) {
  const std::vector<Edge> edges;
  const CsrGraph g = build_undirected(4, std::span<const Edge>(edges));
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Builder, EdgeListRoundTrip) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}, {0, 3}, {1, 3}};
  const CsrGraph g = build_undirected(4, std::span<const Edge>(edges));
  const std::vector<Edge> out = edge_list(g);
  ASSERT_EQ(out.size(), edges.size());
  // edge_list is canonical: sorted by (u, v) with u < v.
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_LT(out[i].u, out[i].v);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_TRUE(out[i - 1].u < out[i].u ||
                (out[i - 1].u == out[i].u && out[i - 1].v < out[i].v));
  }
  const CsrGraph g2 = build_undirected(4, std::span<const Edge>(out));
  EXPECT_EQ(g2.offsets().size(), g.offsets().size());
  EXPECT_TRUE(std::equal(g2.targets().begin(), g2.targets().end(),
                         g.targets().begin()));
}

TEST(WeightedBuilder, KeepsSmallestWeightOnParallelEdges) {
  const std::vector<WeightedEdge> edges = {{0, 1, 5.0}, {1, 0, 2.0}, {0, 1, 9.0}};
  const WeightedCsrGraph g =
      build_undirected_weighted(2, std::span<const WeightedEdge>(edges));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.arc_weights(0)[0], 2.0);
  EXPECT_DOUBLE_EQ(g.arc_weights(1)[0], 2.0);
}

TEST(WeightedBuilder, WeightsAlignWithNeighbors) {
  const std::vector<WeightedEdge> edges = {{0, 1, 1.5}, {0, 2, 2.5}, {1, 2, 3.5}};
  const WeightedCsrGraph g =
      build_undirected_weighted(3, std::span<const WeightedEdge>(edges));
  const auto nbrs = g.neighbors(0);
  const auto ws = g.arc_weights(0);
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_EQ(nbrs[0], 1u);
  EXPECT_DOUBLE_EQ(ws[0], 1.5);
  EXPECT_EQ(nbrs[1], 2u);
  EXPECT_DOUBLE_EQ(ws[1], 2.5);
}

TEST(WeightedBuilder, WeightedEdgeListRoundTrip) {
  const std::vector<WeightedEdge> edges = {{0, 1, 1.0}, {1, 2, 0.5}};
  const WeightedCsrGraph g =
      build_undirected_weighted(3, std::span<const WeightedEdge>(edges));
  const auto out = edge_list(g);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].u, 0u);
  EXPECT_EQ(out[0].v, 1u);
  EXPECT_DOUBLE_EQ(out[0].w, 1.0);
  EXPECT_DOUBLE_EQ(out[1].w, 0.5);
}

TEST(WeightedBuilder, UnitWeights) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}};
  const CsrGraph g = build_undirected(3, std::span<const Edge>(edges));
  const WeightedCsrGraph w = with_unit_weights(g);
  EXPECT_EQ(w.num_edges(), g.num_edges());
  for (const double weight : w.weights()) EXPECT_DOUBLE_EQ(weight, 1.0);
}

TEST(CsrGraph, SymmetryDetectsAsymmetricInput) {
  // Hand-build an asymmetric CSR: arc 0->1 without 1->0.
  std::vector<edge_t> offsets = {0, 1, 1};
  std::vector<vertex_t> targets = {1};
  const CsrGraph g(std::move(offsets), std::move(targets));
  EXPECT_FALSE(g.is_symmetric());
}

TEST(CsrGraph, SymmetryDetectsSelfLoop) {
  std::vector<edge_t> offsets = {0, 1};
  std::vector<vertex_t> targets = {0};
  const CsrGraph g(std::move(offsets), std::move(targets));
  EXPECT_FALSE(g.is_symmetric());
}

}  // namespace
}  // namespace mpx
