// Tests for the Laplacian operator and preconditioners.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "graph/builder.hpp"
#include "apps/laplacian.hpp"
#include "apps/low_stretch_tree.hpp"
#include "graph/generators.hpp"
#include "support/random.hpp"

namespace mpx {
namespace {

using namespace mpx::generators;

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = uniform_double(hash_stream(seed, i)) - 0.5;
  }
  return x;
}

/// Dense reference: (L x)_u = deg-weighted difference sum.
std::vector<double> dense_laplacian_apply(const WeightedCsrGraph& g,
                                          const std::vector<double>& x) {
  std::vector<double> y(g.num_vertices(), 0.0);
  for (vertex_t u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto ws = g.arc_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      y[u] += ws[i] * (x[u] - x[nbrs[i]]);
    }
  }
  return y;
}

TEST(Laplacian, ApplyMatchesDenseReference) {
  const WeightedCsrGraph g = with_unit_weights(grid2d(9, 9));
  const LaplacianOperator lap(g);
  const std::vector<double> x = random_vector(g.num_vertices(), 3);
  std::vector<double> y(g.num_vertices());
  lap.apply(x, y);
  const std::vector<double> expected = dense_laplacian_apply(g, x);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y[i], expected[i], 1e-12);
  }
}

TEST(Laplacian, ConstantVectorsAreInTheNullspace) {
  const WeightedCsrGraph g = with_unit_weights(erdos_renyi(100, 300, 2));
  const LaplacianOperator lap(g);
  const std::vector<double> ones(g.num_vertices(), 3.5);
  std::vector<double> y(g.num_vertices());
  lap.apply(ones, y);
  for (const double v : y) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(Laplacian, QuadraticFormIsEdgeEnergy) {
  // x^T L x = sum_{uv} w(u,v) (x_u - x_v)^2.
  const std::vector<WeightedEdge> edges = {{0, 1, 2.0}, {1, 2, 0.5}};
  const WeightedCsrGraph g =
      build_undirected_weighted(3, std::span<const WeightedEdge>(edges));
  const LaplacianOperator lap(g);
  const std::vector<double> x = {1.0, 3.0, 0.0};
  std::vector<double> y(3);
  lap.apply(x, y);
  double quad = 0.0;
  for (std::size_t i = 0; i < 3; ++i) quad += x[i] * y[i];
  EXPECT_NEAR(quad, 2.0 * 4.0 + 0.5 * 9.0, 1e-12);
}

TEST(Laplacian, DiagonalIsWeightedDegree) {
  const std::vector<WeightedEdge> edges = {{0, 1, 2.0}, {0, 2, 3.0}};
  const WeightedCsrGraph g =
      build_undirected_weighted(3, std::span<const WeightedEdge>(edges));
  const LaplacianOperator lap(g);
  EXPECT_DOUBLE_EQ(lap.diagonal(0), 5.0);
  EXPECT_DOUBLE_EQ(lap.diagonal(1), 2.0);
}

TEST(Preconditioners, IdentityCopies) {
  IdentityPreconditioner id;
  const std::vector<double> r = {1.0, -2.0, 3.0};
  std::vector<double> z(3);
  id.apply(r, z);
  EXPECT_EQ(z, r);
}

TEST(Preconditioners, JacobiDividesByDegree) {
  const WeightedCsrGraph g = with_unit_weights(star(5));
  JacobiPreconditioner jacobi(g);
  const std::vector<double> r = {4.0, 1.0, 1.0, 1.0, 1.0};
  std::vector<double> z(5);
  jacobi.apply(r, z);
  EXPECT_DOUBLE_EQ(z[0], 1.0);  // center has degree 4
  EXPECT_DOUBLE_EQ(z[1], 1.0);  // leaves have degree 1
}

TEST(TreePreconditionerTest, SolvesTreeSystemsExactly) {
  // On a tree, the preconditioner IS the (pseudo-)inverse: L_T z = r for
  // mean-zero r.
  for (const std::uint64_t seed : {1ull, 2ull}) {
    const CsrGraph topo = complete_binary_tree(31);
    const WeightedCsrGraph tree = with_unit_weights(topo);
    const TreePreconditioner precond(tree);
    std::vector<double> r = random_vector(tree.num_vertices(), seed);
    project_mean_zero(r);
    std::vector<double> z(tree.num_vertices());
    precond.apply(r, z);
    const LaplacianOperator lap(tree);
    std::vector<double> back(tree.num_vertices());
    lap.apply(z, back);
    for (std::size_t i = 0; i < back.size(); ++i) {
      EXPECT_NEAR(back[i], r[i], 1e-9);
    }
  }
}

TEST(TreePreconditionerTest, WeightedTreeSolve) {
  const std::vector<WeightedEdge> edges = {
      {0, 1, 2.0}, {1, 2, 0.25}, {1, 3, 1.0}, {3, 4, 4.0}};
  const WeightedCsrGraph tree =
      build_undirected_weighted(5, std::span<const WeightedEdge>(edges));
  const TreePreconditioner precond(tree);
  std::vector<double> r = {1.0, -0.5, 0.75, -1.5, 0.25};
  project_mean_zero(r);
  std::vector<double> z(5);
  precond.apply(r, z);
  const LaplacianOperator lap(tree);
  std::vector<double> back(5);
  lap.apply(z, back);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(back[i], r[i], 1e-10);
}

TEST(TreePreconditionerTest, HandlesForests) {
  const CsrGraph forest = generators::disjoint_copies(path(4), 2);
  const WeightedCsrGraph tree = with_unit_weights(forest);
  const TreePreconditioner precond(tree);
  // Mean-zero per component input.
  std::vector<double> r = {1.0, -1.0, 2.0, -2.0, 0.5, -0.5, 1.5, -1.5};
  std::vector<double> z(8);
  precond.apply(r, z);
  const LaplacianOperator lap(tree);
  std::vector<double> back(8);
  lap.apply(z, back);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(back[i], r[i], 1e-10);
}

TEST(TreePreconditionerTest, OutputIsMeanZero) {
  const WeightedCsrGraph tree = with_unit_weights(path(16));
  const TreePreconditioner precond(tree);
  std::vector<double> r = random_vector(16, 9);
  project_mean_zero(r);
  std::vector<double> z(16);
  precond.apply(r, z);
  double sum = 0.0;
  for (const double v : z) sum += v;
  EXPECT_NEAR(sum, 0.0, 1e-9);
}

TEST(ProjectMeanZero, RemovesTheMean) {
  std::vector<double> x = {1.0, 2.0, 3.0, 6.0};
  project_mean_zero(x);
  EXPECT_DOUBLE_EQ(x[0], -2.0);
  EXPECT_DOUBLE_EQ(x[3], 3.0);
  double sum = 0.0;
  for (const double v : x) sum += v;
  EXPECT_NEAR(sum, 0.0, 1e-12);
}

}  // namespace
}  // namespace mpx
