// Tests for exponential shift generation (Lemma 4.2 quantities and the
// Section 5 tie-break schedules).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "core/shifts.hpp"

namespace mpx {
namespace {

PartitionOptions opts(double beta, std::uint64_t seed,
                      TieBreak tb = TieBreak::kFractionalShift) {
  PartitionOptions o;
  o.beta = beta;
  o.seed = seed;
  o.tie_break = tb;
  return o;
}

TEST(Shifts, SizesAndNonNegativity) {
  const Shifts s = generate_shifts(1000, opts(0.1, 42));
  EXPECT_EQ(s.delta.size(), 1000u);
  EXPECT_EQ(s.start_round.size(), 1000u);
  EXPECT_EQ(s.rank.size(), 1000u);
  for (const double d : s.delta) EXPECT_GE(d, 0.0);
}

TEST(Shifts, DeltaMaxIsTheMaximum) {
  const Shifts s = generate_shifts(5000, opts(0.2, 1));
  const double expected = *std::max_element(s.delta.begin(), s.delta.end());
  EXPECT_DOUBLE_EQ(s.delta_max, expected);
}

TEST(Shifts, StartRoundFormula) {
  const Shifts s = generate_shifts(2000, opts(0.3, 7));
  for (std::size_t v = 0; v < s.delta.size(); ++v) {
    EXPECT_EQ(s.start_round[v], static_cast<std::uint32_t>(
                                    std::floor(s.delta_max - s.delta[v])));
  }
  // The max-shift vertex starts immediately.
  const auto argmax = static_cast<std::size_t>(
      std::max_element(s.delta.begin(), s.delta.end()) - s.delta.begin());
  EXPECT_EQ(s.start_round[argmax], 0u);
}

TEST(Shifts, SeedDeterminismAndVariation) {
  const Shifts a = generate_shifts(500, opts(0.1, 9));
  const Shifts b = generate_shifts(500, opts(0.1, 9));
  const Shifts c = generate_shifts(500, opts(0.1, 10));
  EXPECT_EQ(a.delta, b.delta);
  EXPECT_EQ(a.rank, b.rank);
  EXPECT_NE(a.delta, c.delta);
}

TEST(Shifts, RanksAreAPermutationInEveryMode) {
  for (const TieBreak tb :
       {TieBreak::kFractionalShift, TieBreak::kRandomPermutation,
        TieBreak::kLexicographic}) {
    const Shifts s = generate_shifts(777, opts(0.15, 3, tb));
    std::vector<std::uint32_t> sorted = s.rank;
    std::sort(sorted.begin(), sorted.end());
    for (std::uint32_t i = 0; i < sorted.size(); ++i) {
      ASSERT_EQ(sorted[i], i) << "mode " << static_cast<int>(tb);
    }
  }
}

TEST(Shifts, FractionalRanksOrderByFractionalStart) {
  const Shifts s = generate_shifts(400, opts(0.1, 5));
  // rank[u] < rank[v] must imply frac(start_u) <= frac(start_v).
  std::vector<std::uint32_t> order(400);
  for (std::uint32_t v = 0; v < 400; ++v) order[s.rank[v]] = v;
  for (std::size_t i = 1; i < order.size(); ++i) {
    const double fa = (s.delta_max - s.delta[order[i - 1]]) -
                      std::floor(s.delta_max - s.delta[order[i - 1]]);
    const double fb = (s.delta_max - s.delta[order[i]]) -
                      std::floor(s.delta_max - s.delta[order[i]]);
    EXPECT_LE(fa, fb);
  }
}

TEST(Shifts, LexicographicRanksAreIdentity) {
  const Shifts s = generate_shifts(100, opts(0.5, 2, TieBreak::kLexicographic));
  for (std::uint32_t v = 0; v < 100; ++v) EXPECT_EQ(s.rank[v], v);
}

TEST(Shifts, PermutationModeDecorrelatedFromShifts) {
  const Shifts s =
      generate_shifts(2000, opts(0.1, 8, TieBreak::kRandomPermutation));
  // Spearman-style check: rank and delta should be uncorrelated.
  double mean_rank = (2000.0 - 1) / 2;
  std::vector<std::uint32_t> delta_order(2000);
  std::iota(delta_order.begin(), delta_order.end(), 0u);
  std::sort(delta_order.begin(), delta_order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return s.delta[a] < s.delta[b];
            });
  double cov = 0.0;
  for (std::uint32_t i = 0; i < 2000; ++i) {
    cov += (static_cast<double>(i) - mean_rank) *
           (static_cast<double>(s.rank[delta_order[i]]) - mean_rank);
  }
  const double var = 2000.0 * (2000.0 * 2000.0 - 1) / 12.0;
  EXPECT_LT(std::fabs(cov / var), 0.1);
}

TEST(Shifts, MaxShiftConcentratesAroundHarmonicOverBeta) {
  // Lemma 4.2: E[delta_max] = H_n / beta. Average over seeds.
  const vertex_t n = 4096;
  const double beta = 0.05;
  double h_n = 0.0;
  for (vertex_t i = 1; i <= n; ++i) h_n += 1.0 / i;
  double sum = 0.0;
  const int kTrials = 40;
  for (int t = 0; t < kTrials; ++t) {
    sum += generate_shifts(n, opts(beta, static_cast<std::uint64_t>(t)))
               .delta_max;
  }
  const double mean = sum / kTrials;
  EXPECT_NEAR(mean, h_n / beta, 0.15 * h_n / beta);
}

TEST(Shifts, HighProbabilityTailBound) {
  // Lemma 4.2 tail: P[delta_u > (d+1) ln n / beta] <= n^-(d+1); with d = 1
  // the chance any of n vertices exceeds 2 ln n / beta is ~ 1/n.
  const vertex_t n = 10000;
  const double beta = 0.1;
  int violations = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Shifts s = generate_shifts(n, opts(beta, seed));
    if (s.delta_max > 2.0 * std::log(n) / beta) ++violations;
  }
  EXPECT_LE(violations, 2);
}

TEST(Shifts, SmallerBetaGivesLargerShifts) {
  const Shifts coarse = generate_shifts(1000, opts(0.5, 4));
  const Shifts fine = generate_shifts(1000, opts(0.01, 4));
  EXPECT_GT(fine.delta_max, coarse.delta_max);
  // Same seed and inverse-CDF sampling: shifts scale exactly by the rate
  // ratio.
  EXPECT_NEAR(fine.delta[0] * 0.01, coarse.delta[0] * 0.5, 1e-9);
}

TEST(Shifts, EmptyAndSingletonGraphs) {
  const Shifts none = generate_shifts(0, opts(0.1, 1));
  EXPECT_TRUE(none.delta.empty());
  const Shifts one = generate_shifts(1, opts(0.1, 1));
  EXPECT_EQ(one.start_round[0], 0u);
  EXPECT_EQ(one.rank[0], 0u);
}

}  // namespace
}  // namespace mpx
