// Tests for decomposition serialization: round-trips, bitwise stability,
// malformed-input rejection, and a golden file pinning the format.
#include <gtest/gtest.h>

#include <sstream>

#include "core/decomposition_io.hpp"
#include "core/partition.hpp"
#include "graph/generators.hpp"
#include "tests/support/fixtures.hpp"
#include "tests/support/golden.hpp"
#include "tests/support/invariants.hpp"
#include "tests/support/temp_dir.hpp"

namespace mpx {
namespace {

using mpx::testing::check_decomposition_invariants;
using mpx::testing::golden_path;
using mpx::testing::NamedGraph;
using mpx::testing::read_file_or_fail;
using mpx::testing::serialize_decomposition;
using mpx::testing::TempDir;

TEST(DecompositionIo, RoundTripPreservesEverything) {
  const CsrGraph g = generators::grid2d(12, 13);
  PartitionOptions opt;
  opt.beta = 0.2;
  opt.seed = 4;
  const Decomposition dec = partition(g, opt);

  std::stringstream buffer;
  io::write_decomposition(buffer, dec);
  const Decomposition back = io::read_decomposition(buffer);

  ASSERT_EQ(back.num_vertices(), dec.num_vertices());
  ASSERT_EQ(back.num_clusters(), dec.num_clusters());
  for (cluster_t c = 0; c < dec.num_clusters(); ++c) {
    EXPECT_EQ(back.center(c), dec.center(c));
  }
  for (vertex_t v = 0; v < dec.num_vertices(); ++v) {
    EXPECT_EQ(back.cluster_of(v), dec.cluster_of(v));
    EXPECT_EQ(back.dist_to_center(v), dec.dist_to_center(v));
  }
  // The reloaded decomposition still satisfies every invariant.
  EXPECT_TRUE(check_decomposition_invariants(back, g, {.beta = opt.beta}));
}

TEST(DecompositionIo, FileRoundTripsAcrossCorpus) {
  // save -> load -> bitwise-identical re-serialization, for every canonical
  // shape (decompositions of the empty graph included).
  TempDir tmp("dec-io");
  PartitionOptions opt;
  opt.beta = 0.25;
  opt.seed = 7;
  for (const NamedGraph& ng : mpx::testing::small_graphs()) {
    SCOPED_TRACE(ng.name);
    const Decomposition dec = partition(ng.graph, opt);
    const std::string path = tmp.file(ng.name + ".dec");
    io::save_decomposition(path, dec);
    const Decomposition back = io::load_decomposition(path);
    EXPECT_EQ(serialize_decomposition(back), serialize_decomposition(dec));
    EXPECT_TRUE(check_decomposition_invariants(back, ng.graph));
  }
}

TEST(DecompositionIo, GoldenFileMatchesWriter) {
  // Pins the on-disk format alone: the fixture decomposition is built from
  // integer arrays, not from partition(), so no floating-point shift math
  // is in the loop. Regenerate deliberately with: regen_golden.
  EXPECT_EQ(
      serialize_decomposition(mpx::testing::grid3x3_reference_decomposition()),
      read_file_or_fail(golden_path("grid_3x3_reference.dec")));
}

TEST(DecompositionIo, GoldenFileLoadsAndVerifies) {
  const CsrGraph g = generators::grid2d(3, 3);
  const Decomposition back =
      io::load_decomposition(golden_path("grid_3x3_reference.dec"));
  ASSERT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_TRUE(check_decomposition_invariants(back, g));
}

TEST(DecompositionIo, RejectsMalformedInputs) {
  {
    std::stringstream in("# nothing\n");
    EXPECT_THROW((void)io::read_decomposition(in), std::runtime_error);
  }
  {
    std::stringstream in("4 9\n");  // k > n
    EXPECT_THROW((void)io::read_decomposition(in), std::runtime_error);
  }
  {
    std::stringstream in("4 1\n7\n");  // center out of range
    EXPECT_THROW((void)io::read_decomposition(in), std::runtime_error);
  }
  {
    std::stringstream in("2 1\n0\n0 0\n");  // truncated rows
    EXPECT_THROW((void)io::read_decomposition(in), std::runtime_error);
  }
  {
    std::stringstream in("2 1\n0\n5 0\n0 0\n");  // cluster id out of range
    EXPECT_THROW((void)io::read_decomposition(in), std::runtime_error);
  }
}

TEST(DecompositionIo, UnopenablePathThrows) {
  const CsrGraph g = generators::path(4);
  PartitionOptions opt;
  opt.beta = 0.5;
  const Decomposition dec = partition(g, opt);
  EXPECT_THROW(io::save_decomposition("/nonexistent/x.txt", dec),
               std::runtime_error);
  EXPECT_THROW((void)io::load_decomposition("/nonexistent/x.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace mpx
