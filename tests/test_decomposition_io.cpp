// Tests for decomposition serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "core/decomposition_io.hpp"
#include "core/partition.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"

namespace mpx {
namespace {

TEST(DecompositionIo, RoundTripPreservesEverything) {
  const CsrGraph g = generators::grid2d(12, 13);
  PartitionOptions opt;
  opt.beta = 0.2;
  opt.seed = 4;
  const Decomposition dec = partition(g, opt);

  std::stringstream buffer;
  io::write_decomposition(buffer, dec);
  const Decomposition back = io::read_decomposition(buffer);

  ASSERT_EQ(back.num_vertices(), dec.num_vertices());
  ASSERT_EQ(back.num_clusters(), dec.num_clusters());
  for (cluster_t c = 0; c < dec.num_clusters(); ++c) {
    EXPECT_EQ(back.center(c), dec.center(c));
  }
  for (vertex_t v = 0; v < dec.num_vertices(); ++v) {
    EXPECT_EQ(back.cluster_of(v), dec.cluster_of(v));
    EXPECT_EQ(back.dist_to_center(v), dec.dist_to_center(v));
  }
  // The reloaded decomposition still verifies against the graph.
  EXPECT_TRUE(verify_decomposition(back, g).ok);
}

TEST(DecompositionIo, FileRoundTrip) {
  const CsrGraph g = generators::cycle(30);
  PartitionOptions opt;
  opt.beta = 0.3;
  opt.seed = 7;
  const Decomposition dec = partition(g, opt);
  const std::string path = ::testing::TempDir() + "/mpx_dec.txt";
  io::save_decomposition(path, dec);
  const Decomposition back = io::load_decomposition(path);
  EXPECT_EQ(back.num_clusters(), dec.num_clusters());
}

TEST(DecompositionIo, RejectsMalformedInputs) {
  {
    std::stringstream in("# nothing\n");
    EXPECT_THROW((void)io::read_decomposition(in), std::runtime_error);
  }
  {
    std::stringstream in("4 9\n");  // k > n
    EXPECT_THROW((void)io::read_decomposition(in), std::runtime_error);
  }
  {
    std::stringstream in("4 1\n7\n");  // center out of range
    EXPECT_THROW((void)io::read_decomposition(in), std::runtime_error);
  }
  {
    std::stringstream in("2 1\n0\n0 0\n");  // truncated rows
    EXPECT_THROW((void)io::read_decomposition(in), std::runtime_error);
  }
  {
    std::stringstream in("2 1\n0\n5 0\n0 0\n");  // cluster id out of range
    EXPECT_THROW((void)io::read_decomposition(in), std::runtime_error);
  }
}

TEST(DecompositionIo, UnopenablePathThrows) {
  const CsrGraph g = generators::path(4);
  PartitionOptions opt;
  opt.beta = 0.5;
  const Decomposition dec = partition(g, opt);
  EXPECT_THROW(io::save_decomposition("/nonexistent/x.txt", dec),
               std::runtime_error);
  EXPECT_THROW((void)io::load_decomposition("/nonexistent/x.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace mpx
