// Tests for decomposition serialization: round-trips, bitwise stability,
// malformed-input rejection, and a golden file pinning the format.
#include <gtest/gtest.h>

#include <sstream>

#include "core/decomposition_io.hpp"
#include "core/partition.hpp"
#include "graph/generators.hpp"
#include "tests/support/fixtures.hpp"
#include "tests/support/golden.hpp"
#include "tests/support/invariants.hpp"
#include "tests/support/temp_dir.hpp"

namespace mpx {
namespace {

using mpx::testing::check_decomposition_invariants;
using mpx::testing::golden_path;
using mpx::testing::NamedGraph;
using mpx::testing::read_file_or_fail;
using mpx::testing::serialize_decomposition;
using mpx::testing::TempDir;

TEST(DecompositionIo, RoundTripPreservesEverything) {
  const CsrGraph g = generators::grid2d(12, 13);
  PartitionOptions opt;
  opt.beta = 0.2;
  opt.seed = 4;
  const Decomposition dec = partition(g, opt);

  std::stringstream buffer;
  io::write_decomposition(buffer, dec);
  const Decomposition back = io::read_decomposition(buffer);

  ASSERT_EQ(back.num_vertices(), dec.num_vertices());
  ASSERT_EQ(back.num_clusters(), dec.num_clusters());
  for (cluster_t c = 0; c < dec.num_clusters(); ++c) {
    EXPECT_EQ(back.center(c), dec.center(c));
  }
  for (vertex_t v = 0; v < dec.num_vertices(); ++v) {
    EXPECT_EQ(back.cluster_of(v), dec.cluster_of(v));
    EXPECT_EQ(back.dist_to_center(v), dec.dist_to_center(v));
  }
  // The reloaded decomposition still satisfies every invariant.
  EXPECT_TRUE(check_decomposition_invariants(back, g, {.beta = opt.beta}));
}

TEST(DecompositionIo, FileRoundTripsAcrossCorpus) {
  // save -> load -> bitwise-identical re-serialization, for every canonical
  // shape (decompositions of the empty graph included).
  TempDir tmp("dec-io");
  PartitionOptions opt;
  opt.beta = 0.25;
  opt.seed = 7;
  for (const NamedGraph& ng : mpx::testing::small_graphs()) {
    SCOPED_TRACE(ng.name);
    const Decomposition dec = partition(ng.graph, opt);
    const std::string path = tmp.file(ng.name + ".dec");
    io::save_decomposition(path, dec);
    const Decomposition back = io::load_decomposition(path);
    EXPECT_EQ(serialize_decomposition(back), serialize_decomposition(dec));
    EXPECT_TRUE(check_decomposition_invariants(back, ng.graph));
  }
}

TEST(DecompositionIo, GoldenFileMatchesWriter) {
  // Pins the on-disk format alone: the fixture decomposition is built from
  // integer arrays, not from partition(), so no floating-point shift math
  // is in the loop. Regenerate deliberately with: regen_golden.
  EXPECT_EQ(
      serialize_decomposition(mpx::testing::grid3x3_reference_decomposition()),
      read_file_or_fail(golden_path("grid_3x3_reference.dec")));
}

TEST(DecompositionIo, GoldenFileLoadsAndVerifies) {
  const CsrGraph g = generators::grid2d(3, 3);
  const Decomposition back =
      io::load_decomposition(golden_path("grid_3x3_reference.dec"));
  ASSERT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_TRUE(check_decomposition_invariants(back, g));
}

TEST(DecompositionIo, RejectsMalformedInputs) {
  {
    std::stringstream in("# nothing\n");
    EXPECT_THROW((void)io::read_decomposition(in), std::runtime_error);
  }
  {
    std::stringstream in("4 9\n");  // k > n
    EXPECT_THROW((void)io::read_decomposition(in), std::runtime_error);
  }
  {
    std::stringstream in("4 1\n7\n");  // center out of range
    EXPECT_THROW((void)io::read_decomposition(in), std::runtime_error);
  }
  {
    std::stringstream in("2 1\n0\n0 0\n");  // truncated rows
    EXPECT_THROW((void)io::read_decomposition(in), std::runtime_error);
  }
  {
    std::stringstream in("2 1\n0\n5 0\n0 0\n");  // cluster id out of range
    EXPECT_THROW((void)io::read_decomposition(in), std::runtime_error);
  }
}

std::string serialize_with_telemetry(const Decomposition& dec,
                                     const RunTelemetry& telemetry) {
  std::ostringstream out;
  io::write_decomposition(out, dec, telemetry);
  return out.str();
}

TEST(DecompositionIo, TelemetryBlockRoundTrips) {
  const CsrGraph g = generators::grid2d(8, 9);
  PartitionOptions opt;
  opt.beta = 0.3;
  opt.seed = 6;
  const Decomposition dec = partition(g, opt);
  const RunTelemetry telemetry = mpx::testing::reference_telemetry();

  std::stringstream buffer;
  io::write_decomposition(buffer, dec, telemetry);
  const io::LoadedDecomposition back = io::read_decomposition_full(buffer);
  ASSERT_TRUE(back.has_telemetry);
  EXPECT_EQ(back.telemetry, telemetry);
  EXPECT_EQ(serialize_decomposition(back.decomposition),
            serialize_decomposition(dec));
}

TEST(DecompositionIo, TelemetryTimingsRoundTripExactly) {
  // Arbitrary (non-representable) doubles survive bitwise: the writer
  // prints the shortest decimal form that parses back exactly.
  RunTelemetry telemetry = mpx::testing::reference_telemetry();
  telemetry.shift_seconds = 0.1234567890123456789;
  telemetry.search_seconds = 3.0e-9;
  telemetry.total_seconds = 1.0 / 3.0;
  std::stringstream buffer;
  io::write_decomposition(
      buffer, mpx::testing::grid3x3_reference_decomposition(), telemetry);
  const io::LoadedDecomposition back = io::read_decomposition_full(buffer);
  ASSERT_TRUE(back.has_telemetry);
  EXPECT_EQ(back.telemetry.shift_seconds, telemetry.shift_seconds);
  EXPECT_EQ(back.telemetry.search_seconds, telemetry.search_seconds);
  EXPECT_EQ(back.telemetry.total_seconds, telemetry.total_seconds);
}

TEST(DecompositionIo, CacheCountersRoundTripWhenNonzero) {
  // The paged (out-of-core) path fills the block-cache counters; the
  // writer emits them and the reader restores them.
  RunTelemetry telemetry = mpx::testing::reference_telemetry();
  telemetry.cache_hits = 1000;
  telemetry.cache_misses = 37;
  telemetry.cache_evictions = 21;
  std::stringstream buffer;
  io::write_decomposition(
      buffer, mpx::testing::grid3x3_reference_decomposition(), telemetry);
  EXPECT_NE(buffer.str().find("cache_hits 1000"), std::string::npos);
  const io::LoadedDecomposition back = io::read_decomposition_full(buffer);
  ASSERT_TRUE(back.has_telemetry);
  EXPECT_EQ(back.telemetry, telemetry);
}

TEST(DecompositionIo, CacheCountersOmittedWhenAllZero) {
  // In-memory runs leave the counters zero and the telemetry block
  // byte-identical to the pre-paged format (the golden file relies on
  // this), but the parser accepts explicit zeros all the same.
  const RunTelemetry telemetry = mpx::testing::reference_telemetry();
  ASSERT_EQ(telemetry.cache_hits + telemetry.cache_misses +
                telemetry.cache_evictions,
            0u);
  EXPECT_EQ(serialize_with_telemetry(
                mpx::testing::grid3x3_reference_decomposition(), telemetry)
                .find("cache_"),
            std::string::npos);
  std::stringstream in(
      "#! telemetry v1\n#! cache_hits 0\n#! cache_misses 0\n"
      "#! cache_evictions 0\n#! end telemetry\n2 1\n0\n0 0\n0 1\n");
  const io::LoadedDecomposition back = io::read_decomposition_full(in);
  ASSERT_TRUE(back.has_telemetry);
  EXPECT_EQ(back.telemetry.cache_hits, 0u);
}

TEST(DecompositionIo, LegacyReaderSkipsTelemetryBlock) {
  // Readers that predate the block (read_decomposition) treat "#!" lines
  // as comments, so files with telemetry stay loadable everywhere.
  const Decomposition dec = mpx::testing::grid3x3_reference_decomposition();
  std::stringstream buffer;
  io::write_decomposition(buffer, dec, mpx::testing::reference_telemetry());
  const Decomposition back = io::read_decomposition(buffer);
  EXPECT_EQ(serialize_decomposition(back), serialize_decomposition(dec));
}

TEST(DecompositionIo, FullReaderAcceptsFilesWithoutTelemetry) {
  const Decomposition dec = mpx::testing::grid3x3_reference_decomposition();
  std::stringstream buffer;
  io::write_decomposition(buffer, dec);
  const io::LoadedDecomposition back = io::read_decomposition_full(buffer);
  EXPECT_FALSE(back.has_telemetry);
  EXPECT_EQ(serialize_decomposition(back.decomposition),
            serialize_decomposition(dec));
}

TEST(DecompositionIo, TelemetryGoldenMatchesWriter) {
  // Pins the telemetry block format; timings in the fixture are
  // exactly-representable so the bytes are platform-stable. Regenerate
  // deliberately with: regen_golden.
  EXPECT_EQ(
      serialize_with_telemetry(mpx::testing::grid3x3_reference_decomposition(),
                               mpx::testing::reference_telemetry()),
      read_file_or_fail(golden_path("grid_3x3_telemetry.dec")));
}

TEST(DecompositionIo, TelemetryGoldenLoadsAndVerifies) {
  const io::LoadedDecomposition back =
      io::load_decomposition_full(golden_path("grid_3x3_telemetry.dec"));
  ASSERT_TRUE(back.has_telemetry);
  EXPECT_EQ(back.telemetry, mpx::testing::reference_telemetry());
  EXPECT_TRUE(check_decomposition_invariants(back.decomposition,
                                             generators::grid2d(3, 3)));
}

TEST(DecompositionIo, RejectsCorruptTelemetryBlocks) {
  const std::string body = "2 1\n0\n0 0\n0 1\n";
  const auto reject = [&](const std::string& preamble) {
    SCOPED_TRACE(preamble);
    std::stringstream in(preamble + body);
    EXPECT_THROW((void)io::read_decomposition_full(in), std::runtime_error);
  };
  // Unsupported version.
  reject("#! telemetry v2\n#! end telemetry\n");
  // "#!" line outside any block.
  reject("#! rounds 3\n");
  // Unknown key inside a block.
  reject("#! telemetry v1\n#! bogus 1\n#! end telemetry\n");
  // Non-numeric value.
  reject("#! telemetry v1\n#! rounds many\n#! end telemetry\n");
  // Out-of-range u32 (would truncate to 0 via a naive cast).
  reject("#! telemetry v1\n#! rounds 4294967296\n#! end telemetry\n");
  // Negative value (istream >> unsigned would silently wrap it).
  reject("#! telemetry v1\n#! rounds -1\n#! end telemetry\n");
  // Trailing content after a value.
  reject("#! telemetry v1\n#! rounds 3 4\n#! end telemetry\n");
  // Bad terminator.
  reject("#! telemetry v1\n#! end\n#! end telemetry\n");
  // Duplicate block.
  reject(
      "#! telemetry v1\n#! end telemetry\n"
      "#! telemetry v1\n#! end telemetry\n");
  // Unterminated block (header line swallowed as a stray key).
  {
    std::stringstream in("#! telemetry v1\n");
    EXPECT_THROW((void)io::read_decomposition_full(in), std::runtime_error);
  }
}

TEST(DecompositionIo, UnopenablePathThrows) {
  const CsrGraph g = generators::path(4);
  PartitionOptions opt;
  opt.beta = 0.5;
  const Decomposition dec = partition(g, opt);
  EXPECT_THROW(io::save_decomposition("/nonexistent/x.txt", dec),
               std::runtime_error);
  EXPECT_THROW((void)io::load_decomposition("/nonexistent/x.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace mpx
