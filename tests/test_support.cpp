// Tests for the S1 determinism/randomness substrate.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "support/random.hpp"
#include "support/timer.hpp"
#include "support/types.hpp"

namespace mpx {
namespace {

TEST(SplitMix64, IsDeterministic) {
  EXPECT_EQ(splitmix64(0), splitmix64(0));
  EXPECT_EQ(splitmix64(12345), splitmix64(12345));
}

TEST(SplitMix64, DistinctInputsGiveDistinctOutputs) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) seen.insert(splitmix64(i));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(SplitMix64, MixesLowBits) {
  // Consecutive inputs must not produce consecutive outputs.
  int close = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const std::uint64_t a = splitmix64(i);
    const std::uint64_t b = splitmix64(i + 1);
    if ((a > b ? a - b : b - a) < 1000) ++close;
  }
  EXPECT_LT(close, 5);
}

TEST(HashStream, SeedAndCounterBothMatter) {
  EXPECT_NE(hash_stream(1, 0), hash_stream(2, 0));
  EXPECT_NE(hash_stream(1, 0), hash_stream(1, 1));
  EXPECT_EQ(hash_stream(7, 9), hash_stream(7, 9));
}

TEST(HashStream, StreamsLookIndependent) {
  // Correlation proxy: matching bits between parallel streams ~ 32/64.
  std::uint64_t total_matching = 0;
  for (std::uint64_t i = 0; i < 4096; ++i) {
    const std::uint64_t x = hash_stream(1, i);
    const std::uint64_t y = hash_stream(2, i);
    total_matching += static_cast<std::uint64_t>(__builtin_popcountll(~(x ^ y)));
  }
  const double mean_matching =
      static_cast<double>(total_matching) / 4096.0;
  EXPECT_NEAR(mean_matching, 32.0, 1.0);
}

TEST(UniformDouble, RangeIsHalfOpen) {
  EXPECT_EQ(uniform_double(0), 0.0);
  EXPECT_LT(uniform_double(~std::uint64_t{0}), 1.0);
  EXPECT_GE(uniform_double(~std::uint64_t{0}), 0.999999);
}

TEST(UniformDouble, MeanIsHalf) {
  double sum = 0.0;
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    sum += uniform_double(hash_stream(42, static_cast<std::uint64_t>(i)));
  }
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(ExponentialFromUniform, ZeroMapsToZero) {
  EXPECT_EQ(exponential_from_uniform(0.0, 1.0), 0.0);
}

TEST(ExponentialFromUniform, MedianMatchesTheory) {
  // F^{-1}(1/2) = ln(2)/rate.
  EXPECT_NEAR(exponential_from_uniform(0.5, 1.0), std::log(2.0), 1e-12);
  EXPECT_NEAR(exponential_from_uniform(0.5, 0.1), std::log(2.0) / 0.1, 1e-10);
}

TEST(ExponentialShift, DeterministicPerSeedVertex) {
  EXPECT_EQ(exponential_shift(3, 7, 0.5), exponential_shift(3, 7, 0.5));
  EXPECT_NE(exponential_shift(3, 7, 0.5), exponential_shift(4, 7, 0.5));
  EXPECT_NE(exponential_shift(3, 7, 0.5), exponential_shift(3, 8, 0.5));
}

TEST(ExponentialShift, EmpiricalMeanIsOneOverRate) {
  for (const double rate : {0.05, 0.2, 1.0}) {
    double sum = 0.0;
    const int kSamples = 200000;
    for (int i = 0; i < kSamples; ++i) {
      sum += exponential_shift(99, static_cast<std::uint64_t>(i), rate);
    }
    const double mean = sum / kSamples;
    EXPECT_NEAR(mean, 1.0 / rate, 0.03 / rate) << "rate " << rate;
  }
}

TEST(ExponentialShift, EmpiricalVarianceIsOneOverRateSquared) {
  const double rate = 0.5;
  const int kSamples = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = exponential_shift(7, static_cast<std::uint64_t>(i), rate);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kSamples;
  const double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(var, 1.0 / (rate * rate), 0.1 / (rate * rate));
}

TEST(ExponentialShift, MemorylessTail) {
  // P[X > s + t | X > s] should equal P[X > t].
  const double rate = 0.3;
  const int kSamples = 300000;
  const double s = 1.0 / rate;
  const double t = 0.7 / rate;
  int beyond_s = 0;
  int beyond_st = 0;
  int beyond_t = 0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = exponential_shift(5, static_cast<std::uint64_t>(i), rate);
    if (x > s) ++beyond_s;
    if (x > s + t) ++beyond_st;
    if (x > t) ++beyond_t;
  }
  ASSERT_GT(beyond_s, 0);
  const double conditional =
      static_cast<double>(beyond_st) / static_cast<double>(beyond_s);
  const double unconditional =
      static_cast<double>(beyond_t) / static_cast<double>(kSamples);
  EXPECT_NEAR(conditional, unconditional, 0.02);
}

TEST(Xoshiro, ReproducibleFromSeed) {
  Xoshiro256pp a(42);
  Xoshiro256pp b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiffer) {
  Xoshiro256pp a(1);
  Xoshiro256pp b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro, NextBelowStaysInRange) {
  Xoshiro256pp rng(7);
  for (const std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Xoshiro, NextBelowIsRoughlyUniform) {
  Xoshiro256pp rng(11);
  const std::uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) ++counts[rng.next_below(bound)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kSamples / 10.0, kSamples * 0.01);
  }
}

TEST(Xoshiro, NextDoubleInUnitInterval) {
  Xoshiro256pp rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

bool is_permutation_of_iota(const std::vector<std::uint32_t>& perm) {
  std::vector<std::uint32_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (std::uint32_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] != i) return false;
  }
  return true;
}

TEST(RandomPermutation, IsAPermutation) {
  for (const std::size_t n : {0u, 1u, 2u, 17u, 1000u}) {
    EXPECT_TRUE(is_permutation_of_iota(random_permutation(n, 5)))
        << "n = " << n;
  }
}

TEST(RandomPermutation, SeedDeterminism) {
  EXPECT_EQ(random_permutation(100, 9), random_permutation(100, 9));
  EXPECT_NE(random_permutation(100, 9), random_permutation(100, 10));
}

TEST(RandomPermutation, NotIdentityForLargeN) {
  const auto perm = random_permutation(1000, 3);
  std::size_t fixed = 0;
  for (std::uint32_t i = 0; i < perm.size(); ++i) {
    if (perm[i] == i) ++fixed;
  }
  // Expected number of fixed points is 1.
  EXPECT_LT(fixed, 10u);
}

TEST(ParallelRandomPermutation, IsAPermutation) {
  for (const std::size_t n : {0u, 1u, 5u, 4096u, 100000u}) {
    EXPECT_TRUE(is_permutation_of_iota(parallel_random_permutation(n, 21)))
        << "n = " << n;
  }
}

TEST(ParallelRandomPermutation, SeedDeterminism) {
  EXPECT_EQ(parallel_random_permutation(5000, 1),
            parallel_random_permutation(5000, 1));
  EXPECT_NE(parallel_random_permutation(5000, 1),
            parallel_random_permutation(5000, 2));
}

TEST(ParallelRandomPermutation, UniformFirstElement) {
  // Distribution check: position of element 0 should be uniform-ish.
  std::vector<int> buckets(10, 0);
  for (std::uint64_t seed = 0; seed < 2000; ++seed) {
    const auto perm = parallel_random_permutation(100, seed);
    const auto it = std::find(perm.begin(), perm.end(), 0u);
    const std::size_t pos = static_cast<std::size_t>(it - perm.begin());
    ++buckets[pos / 10];
  }
  for (const int b : buckets) EXPECT_GT(b, 100);
}

TEST(WallTimer, MeasuresForwardTime) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_GE(timer.seconds(), 0.0);
  EXPECT_EQ(timer.millis() > 0.0, timer.seconds() > 0.0);
  timer.reset();
  EXPECT_LT(timer.seconds(), 1.0);
}

TEST(Types, SentinelsAreMaxValues) {
  EXPECT_EQ(kInvalidVertex, std::numeric_limits<vertex_t>::max());
  EXPECT_EQ(kInfDist, std::numeric_limits<std::uint32_t>::max());
}

}  // namespace
}  // namespace mpx
