// Tests for the hierarchical tree embedding: laminar structure, the
// domination guarantee (dist_T >= dist_G for every pair, by construction),
// and empirical distortion.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/tree_embedding.hpp"
#include "bfs/sequential_bfs.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace mpx {
namespace {

using namespace mpx::generators;

TEST(TreeEmbeddingTest, EveryVertexGetsALeaf) {
  const CsrGraph g = grid2d(12, 12);
  const TreeEmbedding tree = build_tree_embedding(g);
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LT(tree.leaf_of(v), tree.num_nodes());
  }
  EXPECT_GE(tree.levels(), 1u);
}

TEST(TreeEmbeddingTest, LeafChainsReachARoot) {
  const CsrGraph g = erdos_renyi(200, 600, 3);
  const TreeEmbedding tree = build_tree_embedding(g);
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    std::uint32_t node = tree.leaf_of(v);
    std::uint32_t hops = 0;
    while (tree.node(node).parent != kInfDist) {
      // Levels strictly decrease toward the root.
      EXPECT_LT(tree.node(tree.node(node).parent).level,
                tree.node(node).level);
      node = tree.node(node).parent;
      ASSERT_LE(++hops, tree.levels());
    }
    EXPECT_EQ(tree.node(node).level, 0u);
  }
}

TEST(TreeEmbeddingTest, SelfDistanceIsZeroAndSymmetry) {
  const CsrGraph g = grid2d(8, 8);
  const TreeEmbedding tree = build_tree_embedding(g);
  EXPECT_DOUBLE_EQ(tree.distance(5, 5), 0.0);
  for (vertex_t u = 0; u < 10; ++u) {
    for (vertex_t v = 0; v < 10; ++v) {
      EXPECT_DOUBLE_EQ(tree.distance(u, v), tree.distance(v, u));
    }
  }
}

TEST(TreeEmbeddingTest, DominationHoldsForAllPairsOnSmallGraphs) {
  // The construction pays the parent's measured diameter bound on every
  // climb, making domination deterministic — check every pair.
  const CsrGraph graphs[] = {grid2d(7, 9), cycle(40), barbell(8),
                             erdos_renyi(60, 180, 5),
                             complete_binary_tree(63)};
  for (const CsrGraph& g : graphs) {
    for (std::uint64_t seed = 0; seed < 2; ++seed) {
      TreeEmbeddingOptions opt;
      opt.seed = seed;
      const TreeEmbedding tree = build_tree_embedding(g, opt);
      for (vertex_t u = 0; u < g.num_vertices(); ++u) {
        const std::vector<std::uint32_t> dist = bfs_distances(g, u);
        for (vertex_t v = u + 1; v < g.num_vertices(); ++v) {
          if (dist[v] == kInfDist) continue;
          EXPECT_GE(tree.distance(u, v), static_cast<double>(dist[v]))
              << u << " - " << v << " seed " << seed;
        }
      }
    }
  }
}

TEST(TreeEmbeddingTest, CrossComponentDistanceIsInfinite) {
  const CsrGraph g = disjoint_copies(path(6), 2);
  const TreeEmbedding tree = build_tree_embedding(g);
  EXPECT_TRUE(std::isinf(tree.distance(0, 8)));
  EXPECT_FALSE(std::isinf(tree.distance(0, 5)));
}

TEST(TreeEmbeddingTest, DistortionIsModestOnGrids) {
  const CsrGraph g = grid2d(30, 30);
  TreeEmbeddingOptions opt;
  opt.seed = 3;
  const TreeEmbedding tree = build_tree_embedding(g, opt);
  const DistortionSample s = measure_distortion(g, tree, 40, 11);
  EXPECT_GT(s.pairs_measured, 0u);
  EXPECT_EQ(s.domination_violations, 0u);
  EXPECT_GE(s.mean_distortion, 1.0);
  // Loose sanity bound: hierarchical decomposition keeps mean distortion
  // far below the worst case n.
  EXPECT_LT(s.mean_distortion, 120.0);
}

TEST(TreeEmbeddingTest, SeedDeterminism) {
  const CsrGraph g = erdos_renyi(150, 450, 9);
  TreeEmbeddingOptions opt;
  opt.seed = 4;
  const TreeEmbedding a = build_tree_embedding(g, opt);
  const TreeEmbedding b = build_tree_embedding(g, opt);
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(a.leaf_of(v), b.leaf_of(v));
  }
  EXPECT_DOUBLE_EQ(a.distance(0, 100), b.distance(0, 100));
}

TEST(TreeEmbeddingTest, TrivialGraphs) {
  const std::vector<Edge> none;
  const CsrGraph empty = build_undirected(0, std::span<const Edge>(none));
  const TreeEmbedding t0 = build_tree_embedding(empty);
  EXPECT_EQ(t0.num_nodes(), 0u);

  const CsrGraph one = build_undirected(1, std::span<const Edge>(none));
  const TreeEmbedding t1 = build_tree_embedding(one);
  EXPECT_EQ(t1.distance(0, 0), 0.0);

  const CsrGraph two = path(2);
  const TreeEmbedding t2 = build_tree_embedding(two);
  EXPECT_GE(t2.distance(0, 1), 1.0);
}

}  // namespace
}  // namespace mpx
