// Tests for DecompositionSession (core/session.hpp): snapshot-backed
// construction, request-keyed caching, batch multi-beta runs sharing one
// shift basis, query answering (cluster-of / boundary / distance oracle),
// and persistence of cached results with their telemetry. Also covers
// SharedResultStore, the thread-safe fleet-wide cache the server builds
// on: single-flight concurrent acquires, bitwise identity with session
// answers, warm loads, and the clear()-with-outstanding-references
// lifetime contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "apps/distance_oracle.hpp"
#include "bfs/sequential_bfs.hpp"
#include "core/decomposer.hpp"
#include "core/session.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/snapshot.hpp"
#include "tests/support/fixtures.hpp"
#include "tests/support/temp_dir.hpp"

namespace mpx {
namespace {

DecompositionRequest request(double beta, std::uint64_t seed = 42,
                             const char* algorithm = "mpx") {
  DecompositionRequest req;
  req.algorithm = algorithm;
  req.beta = beta;
  req.seed = seed;
  return req;
}

TEST(Session, RunMatchesFreeFacadeAndCaches) {
  const CsrGraph g = generators::grid2d(30, 30);
  DecompositionSession session((CsrGraph(g)));
  const DecompositionRequest req = request(0.2);

  EXPECT_EQ(session.cached(req), nullptr);
  const DecompositionResult& first = session.run(req);
  const DecompositionResult direct = decompose(g, req);
  EXPECT_EQ(first.owner, direct.owner);
  EXPECT_EQ(first.settle, direct.settle);

  // Second run returns the same cached object, not a recomputation.
  const DecompositionResult& second = session.run(req);
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(session.cache_size(), 1u);
  EXPECT_EQ(session.cached(req), &first);

  // A different request is a different entry.
  (void)session.run(request(0.5));
  EXPECT_EQ(session.cache_size(), 2u);
  session.clear_cache();
  EXPECT_EQ(session.cache_size(), 0u);
  EXPECT_EQ(session.cached(req), nullptr);
}

TEST(Session, OpenSnapshotServesTheGraphZeroCopy) {
  mpx::testing::TempDir dir("mpx_session");
  const CsrGraph g = generators::grid2d(12, 9);
  const std::string path = dir.file("grid.mpxs");
  io::save_snapshot(path, g);

  DecompositionSession session = DecompositionSession::open_snapshot(path);
  EXPECT_FALSE(session.weighted());
  EXPECT_EQ(session.topology().num_vertices(), g.num_vertices());
  EXPECT_FALSE(session.topology().owns_storage());  // mmap view

  const DecompositionRequest req = request(0.3);
  const DecompositionResult& result = session.run(req);
  EXPECT_EQ(result.owner, decompose(g, req).owner);
}

TEST(Session, OpenWeightedSnapshotSelectsWeightedGraph) {
  mpx::testing::TempDir dir("mpx_session");
  const WeightedCsrGraph wg = mpx::testing::grid3x3_weighted_reference();
  const std::string path = dir.file("grid_w.mpxs");
  io::save_snapshot(path, wg);

  DecompositionSession session = DecompositionSession::open_snapshot(path);
  EXPECT_TRUE(session.weighted());
  const DecompositionRequest req = request(0.4, 7, "mpx-weighted");
  const DecompositionResult& result = session.run(req);
  EXPECT_TRUE(result.weighted());
  EXPECT_EQ(result.radii, decompose(wg, req).radii);
}

TEST(Session, BatchMatchesIndividualRunsBitwise) {
  const CsrGraph g = generators::grid2d(40, 40);
  const double betas[] = {0.5, 0.2, 0.1, 0.05};

  DecompositionSession batch_session((CsrGraph(g)));
  const auto batch = batch_session.run_batch(request(0.0), betas);
  ASSERT_EQ(batch.size(), 4u);

  for (std::size_t i = 0; i < std::size(betas); ++i) {
    SCOPED_TRACE("beta=" + std::to_string(betas[i]));
    const DecompositionResult individual = decompose(g, request(betas[i]));
    EXPECT_EQ(batch[i]->owner, individual.owner);
    EXPECT_EQ(batch[i]->settle, individual.settle);
  }
  EXPECT_EQ(batch_session.cache_size(), 4u);

  // A second batch over an overlapping beta set reuses the cache.
  const double more[] = {0.2, 0.07};
  const auto again = batch_session.run_batch(request(0.0), more);
  EXPECT_EQ(again[0], batch[1]);
  EXPECT_EQ(batch_session.cache_size(), 5u);
}

TEST(Session, BatchValidatesEveryBetaUpFront) {
  DecompositionSession session(generators::grid2d(5, 5));
  const double betas[] = {0.5, 0.0};
  EXPECT_THROW((void)session.run_batch(request(0.1), betas),
               std::invalid_argument);
  EXPECT_EQ(session.cache_size(), 0u);  // nothing half-executed
}

TEST(Session, ClusterQueriesAgreeWithTheResult) {
  const CsrGraph g = generators::grid2d(20, 20);
  DecompositionSession session((CsrGraph(g)));
  const DecompositionRequest req = request(0.3);
  const DecompositionResult& result = session.run(req);

  for (vertex_t v = 0; v < g.num_vertices(); v += 17) {
    EXPECT_EQ(session.cluster_of(v, req), result.cluster_of(v));
    EXPECT_EQ(session.owner_of(v, req), result.owner[v]);
  }
  EXPECT_EQ(session.num_clusters(req), result.num_clusters());
}

TEST(Session, BoundaryArcsAreExactlyTheCutEdges) {
  const CsrGraph g = generators::grid2d(15, 15);
  DecompositionSession session((CsrGraph(g)));
  const DecompositionRequest req = request(0.4);
  const DecompositionResult& result = session.run(req);

  const std::span<const Edge> boundary = session.boundary_arcs(req);
  std::set<std::pair<vertex_t, vertex_t>> expected;
  for (vertex_t u = 0; u < g.num_vertices(); ++u) {
    for (const vertex_t v : g.neighbors(u)) {
      if (u < v && result.owner[u] != result.owner[v]) {
        expected.insert({u, v});
      }
    }
  }
  ASSERT_EQ(boundary.size(), expected.size());
  for (const Edge& e : boundary) {
    EXPECT_TRUE(expected.count({e.u, e.v})) << e.u << "-" << e.v;
  }
  // Second call returns the cached list (same address).
  EXPECT_EQ(session.boundary_arcs(req).data(), boundary.data());
}

TEST(Session, DistanceEstimatesMatchAStandaloneOracle) {
  const CsrGraph g = generators::grid2d(18, 18);
  DecompositionSession session((CsrGraph(g)));
  const DecompositionRequest req = request(0.25);
  const DecompositionResult& result = session.run(req);

  const DistanceOracle oracle(g, Decomposition(result.decomposition));
  for (vertex_t u = 0; u < g.num_vertices(); u += 41) {
    for (vertex_t v = 0; v < g.num_vertices(); v += 37) {
      EXPECT_EQ(session.estimate_distance(u, v, req), oracle.estimate(u, v));
    }
  }
  // Estimates never undershoot the true distance (they are realized paths).
  const std::vector<std::uint32_t> exact = bfs_distances(g, 0);
  for (vertex_t v = 0; v < g.num_vertices(); v += 23) {
    EXPECT_GE(session.estimate_distance(0, v, req), exact[v]);
  }
}

TEST(Session, DistanceQueriesRejectWeightedResults) {
  DecompositionSession session(mpx::testing::grid3x3_weighted_reference());
  const DecompositionRequest req = request(0.4, 1, "mpx-weighted");
  EXPECT_THROW((void)session.estimate_distance(0, 1, req),
               std::invalid_argument);
}

TEST(Session, SaveAndReloadCachedResultAcrossSessions) {
  mpx::testing::TempDir dir("mpx_session");
  const std::string path = dir.file("cached.dec");
  const CsrGraph g = generators::grid2d(10, 10);
  const DecompositionRequest req = request(0.3, 9);

  RunTelemetry saved_telemetry;
  {
    DecompositionSession session((CsrGraph(g)));
    (void)session.run(req);
    saved_telemetry = session.run(req).telemetry;
    session.save_cached(req, path);
  }

  DecompositionSession restored((CsrGraph(g)));
  EXPECT_FALSE(restored.load_cached(req, dir.file("missing.dec")));
  ASSERT_TRUE(restored.load_cached(req, path));
  EXPECT_EQ(restored.cache_size(), 1u);

  const DecompositionResult* cached = restored.cached(req);
  ASSERT_NE(cached, nullptr);
  const DecompositionResult direct = decompose(g, req);
  EXPECT_EQ(cached->owner, direct.owner);
  EXPECT_EQ(cached->settle, direct.settle);
  // The telemetry block survived the round trip.
  EXPECT_EQ(cached->telemetry, saved_telemetry);
  // Queries work off the restored entry without recomputation.
  EXPECT_EQ(restored.num_clusters(req), direct.num_clusters());
}

TEST(Session, PersistenceRejectsWeightedAlgorithms) {
  mpx::testing::TempDir dir("mpx_session");
  DecompositionSession session(mpx::testing::grid3x3_weighted_reference());
  const DecompositionRequest req = request(0.4, 1, "mpx-weighted");
  EXPECT_THROW(session.save_cached(req, dir.file("w.dec")),
               std::invalid_argument);
  // load_cached mirrors the guard even before touching the file: a text
  // decomposition can never restore real-valued radii shape-consistently.
  EXPECT_THROW((void)session.load_cached(req, dir.file("absent.dec")),
               std::invalid_argument);
}

TEST(Session, LoadCachedRejectsAlgorithmMismatch) {
  mpx::testing::TempDir dir("mpx_session");
  const std::string path = dir.file("cached.dec");
  const CsrGraph g = generators::grid2d(8, 8);
  {
    DecompositionSession session((CsrGraph(g)));
    session.save_cached(request(0.3), path);  // telemetry says "mpx"
  }
  DecompositionSession other((CsrGraph(g)));
  EXPECT_THROW((void)other.load_cached(request(0.3, 42, "ball-growing"), path),
               std::runtime_error);
}

TEST(Session, LoadCachedKeepsResidentEntriesAlive) {
  mpx::testing::TempDir dir("mpx_session");
  const std::string path = dir.file("cached.dec");
  const CsrGraph g = generators::grid2d(8, 8);
  const DecompositionRequest req = request(0.3);
  DecompositionSession session((CsrGraph(g)));
  session.save_cached(req, path);
  const DecompositionResult& resident = session.run(req);
  // Loading over a resident entry is a no-op: the computed result equals
  // the file (determinism), and outstanding references stay valid.
  ASSERT_TRUE(session.load_cached(req, path));
  EXPECT_EQ(&session.run(req), &resident);
}

TEST(Session, LoadCachedRejectsMismatchedGraph) {
  mpx::testing::TempDir dir("mpx_session");
  const std::string path = dir.file("cached.dec");
  const DecompositionRequest req = request(0.3);
  {
    DecompositionSession session(generators::grid2d(10, 10));
    session.save_cached(req, path);
  }
  DecompositionSession other(generators::grid2d(4, 4));
  EXPECT_THROW((void)other.load_cached(req, path), std::runtime_error);
}

TEST(Session, ConstQueriesRequireMaterialize) {
  DecompositionSession session(generators::grid2d(6, 6));
  const DecompositionRequest req = request(0.3);
  const DecompositionSession& view = session;

  EXPECT_FALSE(session.materialized(req));
  EXPECT_THROW((void)view.cluster_of(0, req), std::logic_error);
  EXPECT_THROW((void)view.boundary_arcs(req), std::logic_error);

  // run() alone is not enough: the boundary list and oracle are still
  // lazy, so the const path keeps refusing until materialize().
  (void)session.run(req);
  EXPECT_FALSE(session.materialized(req));
  EXPECT_THROW((void)view.owner_of(0, req), std::logic_error);

  (void)session.materialize(req);
  EXPECT_TRUE(session.materialized(req));
  EXPECT_EQ(view.cluster_of(0, req), session.cluster_of(0, req));
  EXPECT_EQ(view.num_clusters(req), session.num_clusters(req));
}

TEST(Session, MaterializeReturnsTheCachedResult) {
  DecompositionSession session(generators::grid2d(10, 10));
  const DecompositionRequest req = request(0.3);
  const DecompositionResult& run_ref = session.run(req);
  EXPECT_EQ(&session.materialize(req), &run_ref);
  // Weighted results materialize without an oracle (there is nothing the
  // unweighted distance oracle could serve).
  DecompositionSession wsession(mpx::testing::grid3x3_weighted_reference());
  const DecompositionRequest wreq = request(0.4, 1, "mpx-weighted");
  (void)wsession.materialize(wreq);
  EXPECT_TRUE(wsession.materialized(wreq));
  const DecompositionSession& wview = wsession;
  EXPECT_THROW((void)wview.estimate_distance(0, 1, wreq),
               std::invalid_argument);
}

// The documented server guarantee: after materialize(req), the const
// query path only reads immutable state, so any number of threads may
// query concurrently. Run under ASan/TSan-less CI this still catches
// logic races via wrong answers; under sanitizers it catches UB.
TEST(Session, ConstQueryPathSurvivesConcurrentHammering) {
  const CsrGraph g = generators::grid2d(40, 40);
  DecompositionSession session((CsrGraph(g)));
  const DecompositionRequest req = request(0.25);
  const DecompositionResult& result = session.materialize(req);
  const std::span<const Edge> boundary = session.boundary_arcs(req);
  const DecompositionSession& view = session;

  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const vertex_t n = g.num_vertices();
      for (int i = 0; i < kIters; ++i) {
        const auto v = static_cast<vertex_t>((t * 7919 + i * 104729) % n);
        const auto u = static_cast<vertex_t>((t * 104729 + i * 7919) % n);
        if (view.owner_of(v, req) != result.owner[v]) ++mismatches;
        if (view.cluster_of(v, req) != result.cluster_of(v)) ++mismatches;
        if (view.num_clusters(req) != result.num_clusters()) ++mismatches;
        const std::span<const Edge> b = view.boundary_arcs(req);
        if (b.data() != boundary.data() || b.size() != boundary.size()) {
          ++mismatches;
        }
        // Distance estimates must be stable across threads (the oracle is
        // immutable after materialize); symmetric sampling covers u == v.
        if (view.estimate_distance(u, v, req) !=
            view.estimate_distance(u, v, req)) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  // Sequential spot check that the concurrent answers were the right ones.
  const DistanceOracle oracle(g, Decomposition(result.decomposition));
  for (vertex_t v = 0; v < g.num_vertices(); v += 97) {
    EXPECT_EQ(view.estimate_distance(0, v, req), oracle.estimate(0, v));
  }
}

TEST(Session, UnweightedAlgorithmsRunOnWeightedSessions) {
  DecompositionSession session(mpx::testing::grid3x3_weighted_reference());
  const DecompositionRequest req = request(0.5, 3);
  const DecompositionResult& result = session.run(req);
  EXPECT_FALSE(result.weighted());
  const DecompositionResult direct =
      decompose(mpx::testing::grid3x3_weighted_reference().topology(), req);
  EXPECT_EQ(result.owner, direct.owner);
}

// --- SharedResultStore ------------------------------------------------------

TEST(SharedStore, AcquireMatchesSessionAndCachesFleetWide) {
  const CsrGraph g = generators::grid2d(20, 20);
  SharedResultStore store((CsrGraph(g)));
  const DecompositionRequest req = request(0.3);

  EXPECT_EQ(store.cached(req), nullptr);
  const SharedResultStore::Acquired cold = store.acquire(req);
  ASSERT_NE(cold.entry, nullptr);
  EXPECT_FALSE(cold.from_cache);
  EXPECT_EQ(store.computes(), 1u);
  EXPECT_EQ(store.size(), 1u);

  // The materialized entry answers exactly like a session over the same
  // graph (both draw from the same shared per-seed shift basis).
  DecompositionSession session((CsrGraph(g)));
  const DecompositionResult& expected = session.run(req);
  EXPECT_EQ(cold.entry->result().owner, expected.owner);
  EXPECT_EQ(cold.entry->result().settle, expected.settle);
  EXPECT_EQ(cold.entry->num_clusters(), expected.num_clusters());
  for (vertex_t v = 0; v < g.num_vertices(); v += 13) {
    EXPECT_EQ(cold.entry->cluster_of(v), session.cluster_of(v, req));
    EXPECT_EQ(cold.entry->owner_of(v), session.owner_of(v, req));
  }
  const std::span<const Edge> expected_cut = session.boundary_arcs(req);
  const std::span<const Edge> cut = cold.entry->boundary_arcs();
  ASSERT_EQ(cut.size(), expected_cut.size());
  EXPECT_TRUE(std::equal(cut.begin(), cut.end(), expected_cut.begin()));
  for (vertex_t v = 0; v < g.num_vertices(); v += 131) {
    EXPECT_EQ(cold.entry->estimate_distance(0, v),
              session.estimate_distance(0, v, req));
  }

  // Re-acquiring is a hit on the same immutable entry, not a recompute.
  const SharedResultStore::Acquired warm = store.acquire(req);
  EXPECT_TRUE(warm.from_cache);
  EXPECT_EQ(warm.entry.get(), cold.entry.get());
  EXPECT_EQ(store.computes(), 1u);
  EXPECT_EQ(store.cached(req).get(), cold.entry.get());
  EXPECT_EQ(store.cached(request(0.5)), nullptr);  // distinct key
}

TEST(SharedStore, ConcurrentColdAcquiresAreSingleFlight) {
  const CsrGraph g = generators::grid2d(40, 40);
  SharedResultStore store((CsrGraph(g)));
  const DecompositionRequest req = request(0.25, 11);

  constexpr int kThreads = 8;
  std::atomic<int> cold_count{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  const DecompositionResult expected = decompose(g, req);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      const SharedResultStore::Acquired got = store.acquire(req);
      if (!got.from_cache) ++cold_count;
      if (got.entry->result().owner != expected.owner) ++mismatches;
    });
  }
  for (std::thread& t : threads) t.join();

  // One thread computed; everyone else either waited on the in-flight
  // compute or found the published entry — all of those are cache hits.
  EXPECT_EQ(cold_count.load(), 1);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(store.computes(), 1u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(SharedStore, BatchMatchesIndividualAcquiresBitwise) {
  const CsrGraph g = generators::grid2d(30, 30);
  const double betas[] = {0.5, 0.2, 0.1};

  SharedResultStore batch_store((CsrGraph(g)));
  const std::vector<SharedResultStore::Acquired> batch =
      batch_store.acquire_batch(request(0.0), betas);
  ASSERT_EQ(batch.size(), std::size(betas));

  SharedResultStore one_by_one((CsrGraph(g)));
  for (std::size_t i = 0; i < std::size(betas); ++i) {
    SCOPED_TRACE("beta=" + std::to_string(betas[i]));
    const SharedResultStore::Acquired single =
        one_by_one.acquire(request(betas[i]));
    EXPECT_EQ(batch[i].entry->result().owner, single.entry->result().owner);
    EXPECT_EQ(batch[i].entry->result().settle, single.entry->result().settle);
  }

  // Overlapping betas hit the entries the batch populated.
  EXPECT_TRUE(batch_store.acquire(request(0.2)).from_cache);
  // And a bad beta anywhere in the ladder fails before any compute.
  const double bad[] = {0.5, 0.0};
  EXPECT_THROW((void)batch_store.acquire_batch(request(0.1), bad),
               std::invalid_argument);
}

TEST(SharedStore, ClearKeepsOutstandingEntriesAliveAndRecomputesIdentically) {
  const CsrGraph g = generators::grid2d(12, 12);
  SharedResultStore store((CsrGraph(g)));
  const DecompositionRequest req = request(0.3, 7);

  const std::shared_ptr<const MaterializedDecomposition> held =
      store.acquire(req).entry;
  store.clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.cached(req), nullptr);

  // The outstanding reference is untouched by the clear (the server parks
  // these next to in-flight responses).
  EXPECT_EQ(held->result().owner.size(), g.num_vertices());
  (void)held->cluster_of(0);

  // Recomputing after the clear reproduces the same bytes: the shift
  // draws are a deterministic function of (seed, distribution), so
  // dropping the shared bases loses no information.
  const SharedResultStore::Acquired again = store.acquire(req);
  EXPECT_FALSE(again.from_cache);
  EXPECT_EQ(store.computes(), 2u);
  EXPECT_NE(again.entry.get(), held.get());
  EXPECT_EQ(again.entry->result().owner, held->result().owner);
  EXPECT_EQ(again.entry->result().settle, held->result().settle);
}

TEST(SharedStore, LoadCachedRestoresSavedResultsWarm) {
  mpx::testing::TempDir dir("mpx_store");
  const std::string path = dir.file("cached.dec");
  const CsrGraph g = generators::grid2d(10, 10);
  const DecompositionRequest req = request(0.3, 9);
  DecompositionResult expected;
  {
    DecompositionSession session((CsrGraph(g)));
    expected = session.run(req);
    session.save_cached(req, path);
  }

  SharedResultStore store((CsrGraph(g)));
  ASSERT_TRUE(store.load_cached(req, path));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.computes(), 0u);  // loaded, not computed
  const SharedResultStore::Acquired got = store.acquire(req);
  EXPECT_TRUE(got.from_cache);
  EXPECT_EQ(got.entry->result().owner, expected.owner);
  EXPECT_EQ(got.entry->result().settle, expected.settle);

  // A missing file for a non-resident key is a false return (the lenient
  // warm-restore path; a resident key short-circuits to true without
  // touching the file, per the session contract); mismatched requests
  // keep the session's hard error contract.
  EXPECT_FALSE(store.load_cached(request(0.7), dir.file("missing.dec")));
  EXPECT_TRUE(store.load_cached(req, dir.file("missing.dec")));
  EXPECT_THROW(
      (void)store.load_cached(request(0.3, 9, "ball-growing"), path),
      std::runtime_error);
  EXPECT_THROW(
      (void)store.load_cached(request(0.3, 9, "mpx-weighted"), path),
      std::invalid_argument);
}

TEST(SharedStore, MaterializedDecompositionRejectsWeightedDistanceQueries) {
  SharedResultStore store(mpx::testing::grid3x3_weighted_reference());
  ASSERT_TRUE(store.weighted());
  const SharedResultStore::Acquired got =
      store.acquire(request(0.5, 3, "mpx-weighted"));
  EXPECT_TRUE(got.entry->result().weighted());
  EXPECT_THROW((void)got.entry->estimate_distance(0, 1),
               std::invalid_argument);
  (void)got.entry->cluster_of(0);  // non-distance queries still answer
}

}  // namespace
}  // namespace mpx
