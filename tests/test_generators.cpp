// Tests for every graph family generator: vertex/edge counts, degree
// structure, connectivity, and spot-checked adjacency.
#include <gtest/gtest.h>

#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"

namespace mpx {
namespace {

using namespace mpx::generators;

TEST(Path, CountsAndDegrees) {
  const CsrGraph g = path(10);
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.num_edges(), 9u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(9), 1u);
  for (vertex_t v = 1; v < 9; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Path, SingleVertex) {
  const CsrGraph g = path(1);
  EXPECT_EQ(g.num_vertices(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Cycle, CountsDegreesDiameter) {
  const CsrGraph g = cycle(12);
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_EQ(g.num_edges(), 12u);
  for (vertex_t v = 0; v < 12; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(exact_diameter(g), 6u);
}

TEST(Complete, CountsAndDiameter) {
  const CsrGraph g = complete(8);
  EXPECT_EQ(g.num_vertices(), 8u);
  EXPECT_EQ(g.num_edges(), 28u);
  for (vertex_t v = 0; v < 8; ++v) EXPECT_EQ(g.degree(v), 7u);
  EXPECT_EQ(exact_diameter(g), 1u);
}

TEST(Star, CountsAndDiameter) {
  const CsrGraph g = star(9);
  EXPECT_EQ(g.num_edges(), 8u);
  EXPECT_EQ(g.degree(0), 8u);
  for (vertex_t v = 1; v < 9; ++v) EXPECT_EQ(g.degree(v), 1u);
  EXPECT_EQ(exact_diameter(g), 2u);
}

TEST(Grid2d, CountsAndStructure) {
  const CsrGraph g = grid2d(5, 7);
  EXPECT_EQ(g.num_vertices(), 35u);
  // 5*(7-1) horizontal + 7*(5-1) vertical.
  EXPECT_EQ(g.num_edges(), 5u * 6 + 7u * 4);
  EXPECT_EQ(g.degree(0), 2u);        // corner
  EXPECT_EQ(g.degree(3), 3u);        // top edge
  EXPECT_EQ(g.degree(1 * 7 + 3), 4u);  // interior
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 7));
  EXPECT_FALSE(g.has_edge(6, 7));  // row wrap must not exist
}

TEST(Grid2d, DiameterIsManhattan) {
  const CsrGraph g = grid2d(4, 6);
  EXPECT_EQ(exact_diameter(g), 3u + 5u);
}

TEST(Grid2d, TorusWrapAddsEdges) {
  const CsrGraph g = grid2d(4, 4, /*wrap=*/true);
  EXPECT_EQ(g.num_edges(), 2u * 16);  // 4-regular
  for (vertex_t v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_TRUE(g.has_edge(0, 3));   // row wrap
  EXPECT_TRUE(g.has_edge(0, 12));  // column wrap
}

TEST(Grid3d, CountsAndInteriorDegree) {
  const CsrGraph g = grid3d(3, 4, 5);
  EXPECT_EQ(g.num_vertices(), 60u);
  const edge_t expected = 2u * 4 * 5 + 3u * 3 * 5 + 3u * 4 * 4;
  EXPECT_EQ(g.num_edges(), expected);
  EXPECT_TRUE(is_connected(g));
  // interior vertex (1,1,1) has 6 neighbors
  EXPECT_EQ(g.degree((1u * 4 + 1) * 5 + 1), 6u);
}

TEST(Grid3d, TorusIsSixRegular) {
  const CsrGraph g = grid3d(3, 3, 3, /*wrap=*/true);
  for (vertex_t v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(g.degree(v), 6u);
}

TEST(CompleteBinaryTree, CountsAndAcyclicity) {
  const CsrGraph g = complete_binary_tree(15);
  EXPECT_EQ(g.num_edges(), 14u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(7), 1u);  // leaf
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 3));
}

TEST(Hypercube, CountsAndRegularity) {
  const CsrGraph g = hypercube(5);
  EXPECT_EQ(g.num_vertices(), 32u);
  EXPECT_EQ(g.num_edges(), 32u * 5 / 2);
  for (vertex_t v = 0; v < 32; ++v) EXPECT_EQ(g.degree(v), 5u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(exact_diameter(g), 5u);
}

TEST(ErdosRenyi, ExactEdgeCount) {
  const CsrGraph g = erdos_renyi(100, 300, 7);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_EQ(g.num_edges(), 300u);
  EXPECT_TRUE(g.is_symmetric());
}

TEST(ErdosRenyi, SeedDeterminismAndVariation) {
  const CsrGraph a = erdos_renyi(50, 100, 1);
  const CsrGraph b = erdos_renyi(50, 100, 1);
  const CsrGraph c = erdos_renyi(50, 100, 2);
  EXPECT_TRUE(std::equal(a.targets().begin(), a.targets().end(),
                         b.targets().begin()));
  EXPECT_FALSE(std::equal(a.targets().begin(), a.targets().end(),
                          c.targets().begin(), c.targets().end()));
}

TEST(ErdosRenyi, CanGenerateCompleteGraph) {
  const CsrGraph g = erdos_renyi(10, 45, 3);
  EXPECT_EQ(g.num_edges(), 45u);
  EXPECT_EQ(exact_diameter(g), 1u);
}

TEST(Rmat, ProducesPowerLawishGraph) {
  const CsrGraph g = rmat(10, 8.0, 5);
  EXPECT_EQ(g.num_vertices(), 1024u);
  EXPECT_GT(g.num_edges(), 1024u);           // dense enough
  EXPECT_LE(g.num_edges(), 8192u);           // duplicates removed
  const DegreeStats s = degree_stats(g);
  EXPECT_GT(s.max_degree, 4 * static_cast<vertex_t>(s.mean_degree))
      << "RMAT should produce skewed degrees";
  EXPECT_TRUE(g.is_symmetric());
}

TEST(Rmat, SeedDeterminism) {
  const CsrGraph a = rmat(8, 4.0, 11);
  const CsrGraph b = rmat(8, 4.0, 11);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_TRUE(std::equal(a.targets().begin(), a.targets().end(),
                         b.targets().begin()));
}

TEST(Barbell, BridgeStructure) {
  const CsrGraph g = barbell(5);
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.num_edges(), 2u * 10 + 1);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(g.has_edge(4, 5));  // the bridge
  EXPECT_EQ(g.degree(4), 5u);     // clique + bridge
  EXPECT_EQ(g.degree(0), 4u);     // clique only
}

TEST(Caterpillar, CountsAndLeaves) {
  const CsrGraph g = caterpillar(5, 3);
  EXPECT_EQ(g.num_vertices(), 20u);
  EXPECT_EQ(g.num_edges(), 19u);  // a tree
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(5), 1u);  // first leaf hangs off spine vertex 0
  EXPECT_EQ(g.degree(0), 1u + 3u);
}

TEST(RandomMatchingUnion, DegreesBounded) {
  const CsrGraph g = random_matching_union(1000, 6, 13);
  EXPECT_EQ(g.num_vertices(), 1000u);
  const DegreeStats s = degree_stats(g);
  EXPECT_LE(s.max_degree, 6u);
  EXPECT_GE(s.mean_degree, 5.0);  // few collisions expected
  EXPECT_TRUE(g.is_symmetric());
}

TEST(RandomMatchingUnion, ThreeMatchingsConnectWhp) {
  const CsrGraph g = random_matching_union(2000, 6, 17);
  // Union of several random matchings is an expander w.h.p.
  EXPECT_TRUE(is_connected(g));
}

TEST(DisjointCopies, ComponentsMultiply) {
  const CsrGraph base = cycle(5);
  const CsrGraph g = disjoint_copies(base, 4);
  EXPECT_EQ(g.num_vertices(), 20u);
  EXPECT_EQ(g.num_edges(), 20u);
  EXPECT_EQ(connected_components(g).count, 4u);
  EXPECT_TRUE(g.has_edge(5, 6));
  EXPECT_FALSE(g.has_edge(4, 5));
}

/// Property sweep: every family is symmetric, self-loop free, and within
/// its documented structural bounds.
struct FamilyCase {
  const char* name;
  CsrGraph graph;
  bool connected;
};

class GeneratorFamilies : public ::testing::TestWithParam<int> {};

std::vector<FamilyCase> make_families() {
  std::vector<FamilyCase> fams;
  fams.push_back({"path", path(64), true});
  fams.push_back({"cycle", cycle(64), true});
  fams.push_back({"complete", complete(16), true});
  fams.push_back({"star", star(64), true});
  fams.push_back({"grid2d", grid2d(8, 8), true});
  fams.push_back({"torus2d", grid2d(8, 8, true), true});
  fams.push_back({"grid3d", grid3d(4, 4, 4), true});
  fams.push_back({"tree", complete_binary_tree(63), true});
  fams.push_back({"hypercube", hypercube(6), true});
  fams.push_back({"er", erdos_renyi(64, 256, 1), false});
  fams.push_back({"rmat", rmat(6, 4.0, 2), false});
  fams.push_back({"barbell", barbell(8), true});
  fams.push_back({"caterpillar", caterpillar(8, 2), true});
  fams.push_back({"matchings", random_matching_union(64, 4, 3), false});
  return fams;
}

TEST(GeneratorFamiliesSweep, AllSymmetricAndLoopFree) {
  for (const FamilyCase& fam : make_families()) {
    EXPECT_TRUE(fam.graph.is_symmetric()) << fam.name;
    if (fam.connected) {
      EXPECT_TRUE(is_connected(fam.graph)) << fam.name;
    }
    // No vertex exceeds n-1 neighbors; arcs are twice the edges.
    const DegreeStats s = degree_stats(fam.graph);
    EXPECT_LT(s.max_degree, fam.graph.num_vertices()) << fam.name;
    EXPECT_EQ(fam.graph.num_arcs(), 2 * fam.graph.num_edges()) << fam.name;
  }
}

}  // namespace
}  // namespace mpx
