// Tests for the decomposition-service wire protocol
// (src/server/protocol.hpp): frame-header byte layout pinned against
// docs/PROTOCOL.md, round trips of every message type, and the
// corruption-rejection suite — truncated frames, oversized length
// prefixes, unknown message types, future protocol versions, trailing
// junk, embedded-length overruns, out-of-range enum values. Everything
// malformed must throw ProtocolError; nothing may abort. Mirrors
// test_snapshot.cpp's rejection style for the on-wire format. The
// zero-copy EncodedFrame builders are pinned byte-identical to
// encode_message so the server's vectored writes can never diverge from
// the documented wire layout.
#include <gtest/gtest.h>

#include <cstring>
#include <utility>
#include <vector>

#include "server/protocol.hpp"

namespace mpx::server {
namespace {

DecompositionRequest sample_request() {
  DecompositionRequest req;
  req.algorithm = "mpx-bucketed";
  req.beta = 0.37;
  req.seed = 0xDEADBEEFCAFEull;
  req.tie_break = TieBreak::kRandomPermutation;
  req.distribution = ShiftDistribution::kUniform;
  req.engine = TraversalEngine::kPull;
  return req;
}

std::span<const std::uint8_t> payload_of(
    const std::vector<std::uint8_t>& frame) {
  return std::span<const std::uint8_t>(frame).subspan(kFrameHeaderBytes);
}

// --- framing ---------------------------------------------------------------

TEST(Protocol, FrameHeaderLayoutMatchesSpec) {
  // docs/PROTOCOL.md "Frame header layout": magic at 0, version u16 at 4,
  // type u16 at 6, payload_bytes u64 at 8, payload at 16.
  const std::vector<std::uint8_t> payload = {0xAA, 0xBB, 0xCC};
  const std::vector<std::uint8_t> frame =
      encode_frame(MessageType::kQueryRequest, payload);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + payload.size());
  EXPECT_EQ(frame[0], 'M');
  EXPECT_EQ(frame[1], 'P');
  EXPECT_EQ(frame[2], 'X');
  EXPECT_EQ(frame[3], 'Q');
  EXPECT_EQ(frame[4], kProtocolVersion);  // little-endian u16
  EXPECT_EQ(frame[5], 0);
  EXPECT_EQ(frame[6], 0x03);  // kQueryRequest
  EXPECT_EQ(frame[7], 0);
  std::uint64_t length;
  std::memcpy(&length, frame.data() + 8, sizeof(length));
  EXPECT_EQ(length, payload.size());
  EXPECT_EQ(frame[16], 0xAA);

  const FrameHeader header = decode_frame_header(frame);
  EXPECT_EQ(header.type, MessageType::kQueryRequest);
  EXPECT_EQ(header.payload_bytes, payload.size());
}

TEST(Protocol, RejectsTruncatedFrameHeader) {
  const std::vector<std::uint8_t> frame =
      encode_frame(MessageType::kInfoRequest, {});
  for (const std::size_t keep : {0u, 1u, 4u, 8u, 15u}) {
    SCOPED_TRACE("keep=" + std::to_string(keep));
    EXPECT_THROW(
        (void)decode_frame_header(
            std::span<const std::uint8_t>(frame.data(), keep)),
        ProtocolError);
  }
}

TEST(Protocol, RejectsBadMagic) {
  std::vector<std::uint8_t> frame = encode_frame(MessageType::kInfoRequest, {});
  frame[0] = 'X';
  EXPECT_THROW((void)decode_frame_header(frame), ProtocolError);
}

TEST(Protocol, RejectsFutureProtocolVersion) {
  std::vector<std::uint8_t> frame = encode_frame(MessageType::kInfoRequest, {});
  frame[4] = kProtocolVersion + 1;
  EXPECT_THROW((void)decode_frame_header(frame), ProtocolError);
  // Version 0 (older than anything we ever spoke) is equally rejected.
  frame[4] = 0;
  EXPECT_THROW((void)decode_frame_header(frame), ProtocolError);
}

TEST(Protocol, RejectsUnknownMessageType) {
  std::vector<std::uint8_t> frame = encode_frame(MessageType::kInfoRequest, {});
  frame[6] = 0x42;  // not a defined type
  EXPECT_THROW((void)decode_frame_header(frame), ProtocolError);
  EXPECT_FALSE(is_known_message_type(0x42));
  EXPECT_TRUE(is_known_message_type(0x01));
  EXPECT_TRUE(is_known_message_type(0xFF));
}

TEST(Protocol, RejectsOversizedLengthPrefix) {
  std::vector<std::uint8_t> frame = encode_frame(MessageType::kRunRequest, {});
  const std::uint64_t huge = kMaxFramePayloadBytes + 1;
  std::memcpy(frame.data() + 8, &huge, sizeof(huge));
  EXPECT_THROW((void)decode_frame_header(frame), ProtocolError);
}

// --- message round trips ---------------------------------------------------

TEST(Protocol, InfoMessagesRoundTrip) {
  EXPECT_EQ(decode_info_request(encode_payload(InfoRequest{})), InfoRequest{});
  InfoResponse info;
  info.num_vertices = 1u << 20;
  info.num_edges = 123456789;
  info.weighted = true;
  info.workers = 8;
  info.requests_served = 42;
  info.cache_hits = 1000;
  info.cache_misses = 37;
  info.cache_evictions = 21;
  EXPECT_EQ(decode_info_response(encode_payload(info)), info);
}

TEST(Protocol, RunRequestRoundTripsEveryEnum) {
  for (const TieBreak tie : {TieBreak::kFractionalShift,
                             TieBreak::kRandomPermutation,
                             TieBreak::kLexicographic}) {
    for (const ShiftDistribution dist :
         {ShiftDistribution::kExponential,
          ShiftDistribution::kPermutationQuantile, ShiftDistribution::kUniform}) {
      for (const TraversalEngine engine :
           {TraversalEngine::kAuto, TraversalEngine::kPush,
            TraversalEngine::kPull}) {
        RunRequest msg;
        msg.request = sample_request();
        msg.request.tie_break = tie;
        msg.request.distribution = dist;
        msg.request.engine = engine;
        msg.include_arrays = true;
        EXPECT_EQ(decode_run_request(encode_payload(msg)), msg);
      }
    }
  }
}

TEST(Protocol, RunResponseRoundTripsWithAndWithoutArrays) {
  RunResponse summary;
  summary.num_clusters = 17;
  summary.rounds = 9;
  summary.phases = 2;
  summary.arcs_scanned = 123456;
  summary.from_cache = true;
  EXPECT_EQ(decode_run_response(encode_payload(summary)), summary);

  RunResponse arrays = summary;
  arrays.has_arrays = true;
  arrays.owner = {0, 0, 2, 2, 4};
  arrays.settle = {0, 1, 0, 1, 0};
  EXPECT_EQ(decode_run_response(encode_payload(arrays)), arrays);

  // mpx-weighted shape: owner populated, settle empty.
  arrays.is_weighted = true;
  arrays.settle.clear();
  EXPECT_EQ(decode_run_response(encode_payload(arrays)), arrays);
}

TEST(Protocol, QueryMessagesRoundTrip) {
  for (const QueryKind kind :
       {QueryKind::kClusterOf, QueryKind::kOwnerOf, QueryKind::kDistance}) {
    QueryRequest msg;
    msg.request = sample_request();
    msg.kind = kind;
    msg.u = 7;
    msg.v = 11;
    EXPECT_EQ(decode_query_request(encode_payload(msg)), msg);
  }
  QueryResponse answer{0xFFFFFFFFull};
  EXPECT_EQ(decode_query_response(encode_payload(answer)), answer);
}

TEST(Protocol, BoundaryMessagesRoundTrip) {
  BoundaryRequest req;
  req.request = sample_request();
  EXPECT_EQ(decode_boundary_request(encode_payload(req)), req);

  BoundaryResponse resp;
  resp.edges = {{0, 1}, {0, 5}, {3, 4}};
  EXPECT_EQ(decode_boundary_response(encode_payload(resp)), resp);
  EXPECT_EQ(decode_boundary_response(encode_payload(BoundaryResponse{})),
            BoundaryResponse{});
}

TEST(Protocol, BatchMessagesRoundTrip) {
  BatchRequest req;
  req.base = sample_request();
  req.betas = {0.5, 0.2, 0.1, 0.05};
  EXPECT_EQ(decode_batch_request(encode_payload(req)), req);

  BatchResponse resp;
  resp.entries = {{0.5, 10, 4, 123}, {0.1, 2, 19, 7}};
  EXPECT_EQ(decode_batch_response(encode_payload(resp)), resp);
}

TEST(Protocol, ShutdownAndErrorMessagesRoundTrip) {
  EXPECT_EQ(decode_shutdown_request(encode_payload(ShutdownRequest{})),
            ShutdownRequest{});
  EXPECT_EQ(decode_shutdown_response(encode_payload(ShutdownResponse{})),
            ShutdownResponse{});
  ErrorResponse err;
  err.code = ErrorCode::kUnsupportedQuery;
  err.message = "distance estimates serve unweighted algorithms";
  EXPECT_EQ(decode_error_response(encode_payload(err)), err);
}

// --- stats (protocol v2) ---------------------------------------------------

/// A stats snapshot exercising every section: counters, a negative gauge,
/// and histograms whose buckets came from real records (sparse, sorted).
StatsResponse sample_stats() {
  StatsResponse msg;
  msg.connections = 3;
  msg.requests = 41;
  msg.errors = 1;
  msg.info_requests = 2;
  msg.run_requests = 17;
  msg.query_requests = 11;
  msg.boundary_requests = 4;
  msg.batch_requests = 5;
  msg.stats_requests = 2;
  msg.accept_backoffs = 6;
  msg.write_timeouts = 1;
  msg.results_computed = 9;
  msg.service_seconds = 0.125;
  msg.store_resident_results = 7;
  msg.store_computes = 9;
  msg.cache_hits = 100;
  msg.cache_misses = 23;
  msg.cache_evictions = 2;
  msg.cache_resident_blocks = 12;
  msg.cache_resident_bytes = 1u << 20;
  msg.metrics.counters = {{"decomp.computes", 9}, {"decomp.rounds", 51}};
  msg.metrics.gauges = {{"cache.resident_blocks", 12},
                        {"server.outbox_bytes", -1}};  // negative survives
  obs::LatencyHistogram h;
  h.record(0);
  h.record(17);
  h.record(123456789);
  h.record(~0ull);
  msg.metrics.histograms = {{"server.service.run", h.snapshot()}};
  return msg;
}

TEST(Protocol, StatsMessagesRoundTrip) {
  EXPECT_EQ(decode_stats_request(encode_payload(StatsRequest{})),
            StatsRequest{});
  EXPECT_TRUE(encode_payload(StatsRequest{}).empty());

  const StatsResponse msg = sample_stats();
  EXPECT_EQ(decode_stats_response(encode_payload(msg)), msg);
  // An all-defaults response (fresh server, empty registry) also survives.
  EXPECT_EQ(decode_stats_response(encode_payload(StatsResponse{})),
            StatsResponse{});
}

TEST(Protocol, StatsEncodingIsCanonical) {
  // decode(encode(x)) == x bytewise: re-encoding the decoded snapshot
  // reproduces the identical payload, so caches may key on the bytes.
  const std::vector<std::uint8_t> wire = encode_payload(sample_stats());
  EXPECT_EQ(encode_payload(decode_stats_response(wire)), wire);
}

TEST(Protocol, StatsResponseLayoutMatchesSpec) {
  // docs/PROTOCOL.md "kStatsResponse payload": format u16 at 0, the twelve
  // lifetime counters at 2, service_seconds f64 at 98, store/cache block
  // at 106, counter section count u32 at 162.
  const StatsResponse msg = sample_stats();
  const std::vector<std::uint8_t> payload = encode_payload(msg);
  std::uint16_t format = 0;
  std::memcpy(&format, payload.data(), sizeof(format));
  EXPECT_EQ(format, kStatsFormatVersion);
  std::uint64_t connections = 0;
  std::memcpy(&connections, payload.data() + 2, sizeof(connections));
  EXPECT_EQ(connections, msg.connections);
  double service_seconds = 0.0;
  std::memcpy(&service_seconds, payload.data() + 98, sizeof(service_seconds));
  EXPECT_EQ(service_seconds, msg.service_seconds);
  std::uint64_t store_resident = 0;
  std::memcpy(&store_resident, payload.data() + 106, sizeof(store_resident));
  EXPECT_EQ(store_resident, msg.store_resident_results);
  std::uint32_t counter_count = 0;
  std::memcpy(&counter_count, payload.data() + 162, sizeof(counter_count));
  EXPECT_EQ(counter_count, msg.metrics.counters.size());

  // 0x07 / 0x87 are v2 message types, framed like any other.
  EXPECT_TRUE(is_known_message_type(0x07));
  EXPECT_TRUE(is_known_message_type(0x87));
  const std::vector<std::uint8_t> frame =
      encode_message(MessageType::kStatsRequest, StatsRequest{});
  EXPECT_EQ(frame[6], 0x07);
  EXPECT_EQ(decode_frame_header(frame).type, MessageType::kStatsRequest);
}

TEST(Protocol, RejectsTruncatedStatsResponseAtEveryLength) {
  const std::vector<std::uint8_t> payload = encode_payload(sample_stats());
  for (std::size_t keep = 0; keep < payload.size(); ++keep) {
    SCOPED_TRACE("keep=" + std::to_string(keep));
    EXPECT_THROW(
        (void)decode_stats_response(
            std::span<const std::uint8_t>(payload.data(), keep)),
        ProtocolError);
  }
}

TEST(Protocol, RejectsStatsTrailingJunk) {
  std::vector<std::uint8_t> payload = encode_payload(sample_stats());
  payload.push_back(0x5A);
  EXPECT_THROW((void)decode_stats_response(payload), ProtocolError);
  EXPECT_THROW((void)decode_stats_request({payload.data(), 1}), ProtocolError);
}

TEST(Protocol, RejectsUnsupportedStatsFormat) {
  std::vector<std::uint8_t> payload = encode_payload(sample_stats());
  const std::uint16_t future = kStatsFormatVersion + 1;
  std::memcpy(payload.data(), &future, sizeof(future));
  EXPECT_THROW((void)decode_stats_response(payload), ProtocolError);
  const std::uint16_t zero = 0;
  std::memcpy(payload.data(), &zero, sizeof(zero));
  EXPECT_THROW((void)decode_stats_response(payload), ProtocolError);
}

TEST(Protocol, RejectsStatsMetricNameViolations) {
  // Encode refuses unencodable names outright...
  StatsResponse empty_name = sample_stats();
  empty_name.metrics.counters[0].name.clear();
  EXPECT_THROW((void)encode_payload(empty_name), ProtocolError);
  StatsResponse long_name = sample_stats();
  long_name.metrics.gauges[0].name.assign(obs::kMaxMetricNameBytes + 1, 'x');
  EXPECT_THROW((void)encode_payload(long_name), ProtocolError);
  // ...and decode rejects a zero name length patched onto the wire (the
  // first counter's length prefix lives right after the section count).
  std::vector<std::uint8_t> payload = encode_payload(sample_stats());
  const std::uint16_t zero_len = 0;
  std::memcpy(payload.data() + 166, &zero_len, sizeof(zero_len));
  EXPECT_THROW((void)decode_stats_response(payload), ProtocolError);
}

TEST(Protocol, RejectsStatsSectionsOutOfNameOrder) {
  // Sections are canonically strictly name-sorted; both a swap and a
  // duplicate must be rejected (in every section).
  StatsResponse swapped = sample_stats();
  std::swap(swapped.metrics.counters[0], swapped.metrics.counters[1]);
  EXPECT_THROW((void)decode_stats_response(encode_payload(swapped)),
               ProtocolError);
  StatsResponse duplicate = sample_stats();
  duplicate.metrics.gauges[1].name = duplicate.metrics.gauges[0].name;
  EXPECT_THROW((void)decode_stats_response(encode_payload(duplicate)),
               ProtocolError);
  StatsResponse hist_dup = sample_stats();
  hist_dup.metrics.histograms.push_back(hist_dup.metrics.histograms[0]);
  EXPECT_THROW((void)decode_stats_response(encode_payload(hist_dup)),
               ProtocolError);
}

TEST(Protocol, RejectsStatsHistogramBucketViolations) {
  // Out-of-scheme index.
  StatsResponse bad_index = sample_stats();
  bad_index.metrics.histograms[0].histogram.buckets.back().index =
      static_cast<std::uint16_t>(obs::kHistogramBucketCount);
  EXPECT_THROW((void)decode_stats_response(encode_payload(bad_index)),
               ProtocolError);
  // Buckets not strictly ascending by index.
  StatsResponse unsorted = sample_stats();
  auto& buckets = unsorted.metrics.histograms[0].histogram.buckets;
  ASSERT_GE(buckets.size(), 2u);
  std::swap(buckets.front(), buckets.back());
  EXPECT_THROW((void)decode_stats_response(encode_payload(unsorted)),
               ProtocolError);
  // Occupied buckets only: a zero count is not canonical.
  StatsResponse zero_count = sample_stats();
  zero_count.metrics.histograms[0].histogram.buckets.front().count = 0;
  EXPECT_THROW((void)decode_stats_response(encode_payload(zero_count)),
               ProtocolError);
}

TEST(Protocol, EncodeMessageFramesThePayload) {
  QueryResponse answer{99};
  const std::vector<std::uint8_t> frame =
      encode_message(MessageType::kQueryResponse, answer);
  const FrameHeader header = decode_frame_header(frame);
  EXPECT_EQ(header.type, MessageType::kQueryResponse);
  EXPECT_EQ(decode_query_response(payload_of(frame)), answer);
}

// --- payload corruption ----------------------------------------------------

TEST(Protocol, RejectsTruncatedPayloadAtEveryLength) {
  RunRequest msg;
  msg.request = sample_request();
  const std::vector<std::uint8_t> payload = encode_payload(msg);
  for (std::size_t keep = 0; keep < payload.size(); ++keep) {
    SCOPED_TRACE("keep=" + std::to_string(keep));
    EXPECT_THROW(
        (void)decode_run_request(
            std::span<const std::uint8_t>(payload.data(), keep)),
        ProtocolError);
  }
}

TEST(Protocol, RejectsTrailingJunkOnEveryMessage) {
  const auto with_junk = [](std::vector<std::uint8_t> payload) {
    payload.push_back(0x5A);
    return payload;
  };
  RunRequest run;
  run.request = sample_request();
  EXPECT_THROW((void)decode_info_request(with_junk(encode_payload(
                   InfoRequest{}))),
               ProtocolError);
  EXPECT_THROW((void)decode_run_request(with_junk(encode_payload(run))),
               ProtocolError);
  EXPECT_THROW((void)decode_query_response(with_junk(encode_payload(
                   QueryResponse{1}))),
               ProtocolError);
  EXPECT_THROW((void)decode_shutdown_request(with_junk(encode_payload(
                   ShutdownRequest{}))),
               ProtocolError);
  BatchResponse batch;
  batch.entries = {{0.5, 1, 1, 1}};
  EXPECT_THROW((void)decode_batch_response(with_junk(encode_payload(batch))),
               ProtocolError);
}

TEST(Protocol, RejectsAlgorithmLengthOverrunningThePayload) {
  RunRequest msg;
  msg.request = sample_request();
  std::vector<std::uint8_t> payload = encode_payload(msg);
  // The leading u16 is the algorithm length; claim more than exists.
  const std::uint16_t huge = 250;
  std::memcpy(payload.data(), &huge, sizeof(huge));
  EXPECT_THROW((void)decode_run_request(payload), ProtocolError);
  // Zero-length ids are equally invalid.
  const std::uint16_t zero = 0;
  std::memcpy(payload.data(), &zero, sizeof(zero));
  EXPECT_THROW((void)decode_run_request(payload), ProtocolError);
}

TEST(Protocol, RejectsOutOfRangeEnums) {
  RunRequest msg;
  msg.request = sample_request();
  const std::vector<std::uint8_t> good = encode_payload(msg);
  // The three enum bytes sit directly before the trailing include_arrays
  // flag: ... tie_break, distribution, engine, include_arrays.
  for (const std::size_t back_offset : {2u, 3u, 4u}) {
    std::vector<std::uint8_t> bad = good;
    bad[bad.size() - back_offset] = 99;
    SCOPED_TRACE("back_offset=" + std::to_string(back_offset));
    EXPECT_THROW((void)decode_run_request(bad), ProtocolError);
  }
  // And the query kind byte (before the two u32 vertex ids).
  QueryRequest query;
  query.request = sample_request();
  std::vector<std::uint8_t> bad_query = encode_payload(query);
  bad_query[bad_query.size() - 9] = 99;
  EXPECT_THROW((void)decode_query_request(bad_query), ProtocolError);
}

TEST(Protocol, RejectsArrayCountsExceedingThePayload) {
  RunResponse msg;
  msg.has_arrays = true;
  msg.owner = {1, 2, 3};
  msg.settle = {1, 2, 3};
  std::vector<std::uint8_t> payload = encode_payload(msg);
  // The owner count u64 follows the fixed 23-byte summary prefix.
  const std::size_t count_at = 23;
  const std::uint64_t huge = 1ull << 40;
  std::memcpy(payload.data() + count_at, &huge, sizeof(huge));
  EXPECT_THROW((void)decode_run_response(payload), ProtocolError);
}

TEST(Protocol, RejectsSettleCountDisagreeingWithOwner) {
  RunResponse msg;
  msg.has_arrays = true;
  msg.owner = {1, 2, 3};
  msg.settle = {1, 2, 3};
  std::vector<std::uint8_t> payload = encode_payload(msg);
  // Rewrite the settle count (after summary + owner count + 3 owners)
  // from 3 to 2 and drop one settle word: well-formed lengths, but the
  // settle array no longer matches the owner array.
  const std::size_t settle_count_at = 23 + 8 + 3 * sizeof(vertex_t);
  const std::uint64_t two = 2;
  std::memcpy(payload.data() + settle_count_at, &two, sizeof(two));
  payload.resize(payload.size() - sizeof(std::uint32_t));
  EXPECT_THROW((void)decode_run_response(payload), ProtocolError);
}

TEST(Protocol, RejectsBoundaryEdgesViolatingTheOrderContract) {
  BoundaryResponse msg;
  msg.edges = {{3, 1}};  // u >= v: the wire contract requires u < v
  const std::vector<std::uint8_t> payload = encode_payload(msg);
  EXPECT_THROW((void)decode_boundary_response(payload), ProtocolError);
}

TEST(Protocol, RejectsBatchLaddersOverTheLimit) {
  BatchRequest msg;
  msg.base = sample_request();
  msg.betas.assign(kMaxBatchBetas, 0.1);
  const std::vector<std::uint8_t> good = encode_payload(msg);  // at the cap
  EXPECT_EQ(decode_batch_request(good).betas.size(), kMaxBatchBetas);

  // One over the cap is rejected on encode...
  msg.betas.push_back(0.1);
  EXPECT_THROW((void)encode_payload(msg), ProtocolError);
  // ...and a forged on-wire count is rejected before the beta reads (the
  // count u32 sits directly after the encoded base request).
  std::vector<std::uint8_t> forged = good;
  const std::size_t count_at = forged.size() - kMaxBatchBetas * 8 - 4;
  const std::uint32_t huge = kMaxBatchBetas + 1;
  std::memcpy(forged.data() + count_at, &huge, sizeof(huge));
  EXPECT_THROW((void)decode_batch_request(forged), ProtocolError);
}

TEST(Protocol, RejectsOverlongAlgorithmOnEncode) {
  RunRequest msg;
  msg.request = sample_request();
  msg.request.algorithm.assign(300, 'x');
  EXPECT_THROW((void)encode_payload(msg), ProtocolError);
  msg.request.algorithm.clear();
  EXPECT_THROW((void)encode_payload(msg), ProtocolError);
}

// --- zero-copy framing ------------------------------------------------------

TEST(Protocol, ZeroCopyRunFrameIsByteIdenticalToEncodeMessage) {
  RunResponse msg;
  msg.num_clusters = 5;
  msg.is_weighted = false;
  msg.from_cache = true;
  msg.rounds = 7;
  msg.phases = 3;
  msg.arcs_scanned = 12345;
  msg.has_arrays = true;
  msg.owner = {3, 3, 0, 7, 7, 7, 1, 0};
  msg.settle = {0, 1, 1, 2, 2, 3, 3, 4};
  const std::vector<std::uint8_t> expected =
      encode_message(MessageType::kRunResponse, msg);

  // The arrays reach the zero-copy encoder as borrowed spans; the
  // summary's own vectors must be ignored.
  RunResponse summary = msg;
  summary.owner.clear();
  summary.settle.clear();
  const EncodedFrame frame =
      encode_run_response_frame(summary, msg.owner, msg.settle);
  EXPECT_EQ(frame.total_bytes(), expected.size());
  EXPECT_EQ(frame.flatten(), expected);
  // The array bytes really are borrowed, not copied: some chunk aliases
  // the owner vector's storage.
  const auto* owner_bytes =
      reinterpret_cast<const std::uint8_t*>(msg.owner.data());
  bool borrowed = false;
  for (const auto& chunk : frame.chunks) {
    if (chunk.data() == owner_bytes) borrowed = true;
  }
  EXPECT_TRUE(borrowed);
}

TEST(Protocol, ZeroCopyRunFrameHandlesEmptySettleAndNoArrays) {
  // mpx-weighted results carry owner but no settle array.
  RunResponse weighted;
  weighted.num_clusters = 2;
  weighted.is_weighted = true;
  weighted.arcs_scanned = 9;
  weighted.has_arrays = true;
  weighted.owner = {1, 1, 0};
  const EncodedFrame with_empty_settle =
      encode_run_response_frame(weighted, weighted.owner, weighted.settle);
  EXPECT_EQ(with_empty_settle.flatten(),
            encode_message(MessageType::kRunResponse, weighted));

  // has_arrays = false selects the arrayless layout; the spans are unused.
  RunResponse summary_only = weighted;
  summary_only.has_arrays = false;
  summary_only.owner.clear();
  const EncodedFrame arrayless =
      encode_run_response_frame(summary_only, weighted.owner, weighted.settle);
  EXPECT_EQ(arrayless.flatten(),
            encode_message(MessageType::kRunResponse, summary_only));
}

TEST(Protocol, ZeroCopyBoundaryFrameIsByteIdenticalToEncodeMessage) {
  BoundaryResponse msg;
  msg.edges = {{0, 1}, {0, 3}, {2, 5}, {4, 5}};
  EXPECT_EQ(encode_boundary_response_frame(msg.edges).flatten(),
            encode_message(MessageType::kBoundaryResponse, msg));
  // The empty cut is a valid (header + zero-count) frame too.
  EXPECT_EQ(encode_boundary_response_frame({}).flatten(),
            encode_message(MessageType::kBoundaryResponse, BoundaryResponse{}));
}

TEST(Protocol, ZeroCopyFramesSurviveMoves) {
  // The server moves EncodedFrames into a connection's outbox; the spans
  // must stay valid because they view heap storage, not the struct.
  RunResponse msg;
  msg.num_clusters = 1;
  msg.has_arrays = true;
  msg.owner = {0, 0};
  msg.settle = {0, 1};
  const std::vector<std::uint8_t> expected =
      encode_message(MessageType::kRunResponse, msg);
  EncodedFrame frame = encode_run_response_frame(msg, msg.owner, msg.settle);
  const EncodedFrame moved = std::move(frame);
  EXPECT_EQ(moved.flatten(), expected);
}

TEST(Protocol, HotPathQueryFramesAreByteIdenticalToEncodeMessage) {
  QueryRequest msg;
  msg.request = sample_request();
  msg.kind = QueryKind::kDistance;
  msg.u = 7;
  msg.v = 11;
  const std::vector<std::uint8_t> expected =
      encode_message(MessageType::kQueryRequest, msg);
  // Start from stale contents: the encoder must rebuild, not append.
  std::vector<std::uint8_t> frame{0xAA, 0xBB, 0xCC};
  encode_query_request_frame_into(frame, msg);
  EXPECT_EQ(frame, expected);
  encode_query_request_frame_into(frame, msg.request, msg.kind, msg.u, msg.v);
  EXPECT_EQ(frame, expected);

  QueryResponse answer{0x123456789ABCDEF0ull};
  encode_query_response_frame_into(frame, answer);
  EXPECT_EQ(frame, encode_message(MessageType::kQueryResponse, answer));
}

TEST(Protocol, QueryTailDecodeMatchesTheFullDecode) {
  QueryRequest msg;
  msg.request = sample_request();
  std::vector<std::uint8_t> first;
  for (const QueryKind kind :
       {QueryKind::kClusterOf, QueryKind::kOwnerOf, QueryKind::kDistance}) {
    msg.kind = kind;
    msg.u = 0xDEADBEEF;
    msg.v = 0x0BADF00D;
    const std::vector<std::uint8_t> payload = encode_payload(msg);
    const QueryTail tail = decode_query_request_tail(payload);
    EXPECT_EQ(tail.kind, kind);
    EXPECT_EQ(tail.u, msg.u);
    EXPECT_EQ(tail.v, msg.v);
    // The tail is exactly the last kQueryRequestTailBytes: payloads that
    // differ only in kind/u/v share every byte before it (the byte-memo
    // contract servers rely on).
    ASSERT_GE(payload.size(), kQueryRequestTailBytes);
    if (first.empty()) {
      first = payload;
    } else {
      ASSERT_EQ(payload.size(), first.size());
      EXPECT_TRUE(std::equal(
          payload.begin(),
          payload.end() - static_cast<std::ptrdiff_t>(kQueryRequestTailBytes),
          first.begin()));
    }
  }
  // Shorter than the tail: rejected, same contract as the full decoder.
  const std::vector<std::uint8_t> runt(kQueryRequestTailBytes - 1, 0);
  EXPECT_THROW((void)decode_query_request_tail(runt), ProtocolError);
  // Out-of-range kind byte: rejected.
  std::vector<std::uint8_t> bad_kind = encode_payload(msg);
  bad_kind[bad_kind.size() - kQueryRequestTailBytes] = 99;
  EXPECT_THROW((void)decode_query_request_tail(bad_kind), ProtocolError);
}

TEST(Protocol, MakeOwnedFrameWrapsContiguousBytes) {
  const std::vector<std::uint8_t> wire =
      encode_message(MessageType::kInfoRequest, InfoRequest{});
  const EncodedFrame frame = make_owned_frame(std::vector<std::uint8_t>(wire));
  ASSERT_EQ(frame.chunks.size(), 1u);
  EXPECT_EQ(frame.total_bytes(), wire.size());
  EXPECT_EQ(frame.flatten(), wire);
}

TEST(Protocol, RejectsErrorResponseCorruption) {
  ErrorResponse err;
  err.code = ErrorCode::kInternal;
  err.message = "boom";
  std::vector<std::uint8_t> payload = encode_payload(err);
  // Out-of-range code.
  const std::uint32_t bad_code = 77;
  std::memcpy(payload.data(), &bad_code, sizeof(bad_code));
  EXPECT_THROW((void)decode_error_response(payload), ProtocolError);
  // Message length overrunning the payload.
  payload = encode_payload(err);
  const std::uint32_t huge = 4097;
  std::memcpy(payload.data() + 4, &huge, sizeof(huge));
  EXPECT_THROW((void)decode_error_response(payload), ProtocolError);
}

}  // namespace
}  // namespace mpx::server
