// End-to-end integration tests: the full pipelines a downstream user would
// run, plus qualitative reproductions of the paper's claims at test scale.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "mpx/mpx.hpp"
#include "tests/support/invariants.hpp"
#include "tests/support/temp_dir.hpp"

namespace mpx {
namespace {

using namespace mpx::generators;
using mpx::testing::check_decomposition_invariants;

TEST(Integration, QuickstartPipeline) {
  // The README quickstart, verbatim.
  // beta = 0.3 keeps the O(log n / beta) radius well under the grid's
  // side, so multiple clusters appear for essentially every seed.
  const CsrGraph g = grid2d(50, 50);
  PartitionOptions opt;
  opt.beta = 0.3;
  opt.seed = 42;
  const Decomposition dec = partition(g, opt);
  const DecompositionStats stats = analyze(dec, g);
  EXPECT_TRUE(check_decomposition_invariants(dec, g, {.beta = opt.beta}));
  EXPECT_GT(stats.num_clusters, 1u);
  EXPECT_LT(stats.cut_fraction, 0.5);
}

TEST(Integration, Figure1TrendsAtTestScale) {
  // Figure 1's qualitative content on a 60x60 grid: as beta grows, the
  // number of clusters grows, the max radius shrinks, and the cut
  // fraction grows.
  const CsrGraph g = grid2d(60, 60);
  const double betas[] = {0.02, 0.1, 0.4};
  std::vector<double> clusters;
  std::vector<double> radii;
  std::vector<double> cuts;
  for (const double beta : betas) {
    double c = 0;
    double r = 0;
    double cut = 0;
    const int kSeeds = 5;
    for (int seed = 0; seed < kSeeds; ++seed) {
      PartitionOptions opt;
      opt.beta = beta;
      opt.seed = static_cast<std::uint64_t>(seed);
      const Decomposition dec = partition(g, opt);
      const DecompositionStats s = analyze(dec, g);
      c += s.num_clusters;
      r += s.max_radius;
      cut += s.cut_fraction;
    }
    clusters.push_back(c / kSeeds);
    radii.push_back(r / kSeeds);
    cuts.push_back(cut / kSeeds);
  }
  EXPECT_LT(clusters[0], clusters[1]);
  EXPECT_LT(clusters[1], clusters[2]);
  EXPECT_GT(radii[0], radii[1]);
  EXPECT_GT(radii[1], radii[2]);
  EXPECT_LT(cuts[0], cuts[1]);
  EXPECT_LT(cuts[1], cuts[2]);
}

TEST(Integration, MpxVsBallGrowingQualityParity) {
  // E7's qualitative claim: the parallel algorithm matches sequential ball
  // growing's decomposition quality (within constants) at far lower depth.
  const CsrGraph g = grid2d(40, 40);
  const double beta = 0.1;

  double mpx_cut = 0.0;
  const int kSeeds = 5;
  for (int seed = 0; seed < kSeeds; ++seed) {
    PartitionOptions opt;
    opt.beta = beta;
    opt.seed = static_cast<std::uint64_t>(seed);
    mpx_cut += analyze(partition(g, opt), g).cut_fraction;
  }
  mpx_cut /= kSeeds;

  BallGrowingOptions bopt;
  bopt.beta = beta;
  const double ball_cut =
      analyze(ball_growing_decomposition(g, bopt), g).cut_fraction;

  EXPECT_LT(mpx_cut, 8.0 * std::max(ball_cut, beta / 4.0));
}

TEST(Integration, DecompositionFeedsSpannerAndTree) {
  const CsrGraph g = erdos_renyi(300, 1200, 17);
  PartitionOptions opt;
  opt.beta = 0.2;
  opt.seed = 9;

  const SpannerResult spanner = ldd_spanner(g, opt);
  EXPECT_LT(spanner.spanner.num_edges(), g.num_edges());
  EXPECT_EQ(connected_components(spanner.spanner).count,
            connected_components(g).count);

  LowStretchTreeOptions lopt;
  lopt.seed = 9;
  const LowStretchTreeResult lst = low_stretch_tree(g, lopt);
  EXPECT_TRUE(is_connected(lst.tree));
  const EdgeStretch stretch = edge_stretch(g, lst.tree);
  EXPECT_GE(stretch.average, 1.0);
}

TEST(Integration, SolverPipelineOnWeightedGraph) {
  // Weighted end-to-end: random weights, tree preconditioner from the
  // unweighted LSST topology reweighted by the graph's weights.
  const CsrGraph topo = grid2d(12, 12);
  const std::vector<Edge> edges = edge_list(topo);
  std::vector<WeightedEdge> wedges;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    wedges.push_back({edges[i].u, edges[i].v,
                      0.5 + uniform_double(hash_stream(3, i))});
  }
  const WeightedCsrGraph g = build_undirected_weighted(
      topo.num_vertices(), std::span<const WeightedEdge>(wedges));

  LowStretchTreeOptions lopt;
  lopt.seed = 4;
  const CsrGraph tree_topo = low_stretch_tree(topo, lopt).tree;
  // Reweight tree edges with the host graph's weights.
  std::vector<WeightedEdge> tree_edges;
  for (vertex_t u = 0; u < tree_topo.num_vertices(); ++u) {
    const auto nbrs = tree_topo.neighbors(u);
    for (const vertex_t v : nbrs) {
      if (u >= v) continue;
      const auto host_nbrs = g.neighbors(u);
      const auto host_ws = g.arc_weights(u);
      for (std::size_t i = 0; i < host_nbrs.size(); ++i) {
        if (host_nbrs[i] == v) {
          tree_edges.push_back({u, v, host_ws[i]});
          break;
        }
      }
    }
  }
  const WeightedCsrGraph tree = build_undirected_weighted(
      topo.num_vertices(), std::span<const WeightedEdge>(tree_edges));

  const LaplacianOperator lap(g);
  std::vector<double> b(g.num_vertices());
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = uniform_double(hash_stream(8, i)) - 0.5;
  }
  project_mean_zero(b);
  const TreePreconditioner precond(tree);
  const PcgResult r = pcg_solve(lap, b, precond);
  EXPECT_TRUE(r.converged);
}

TEST(Integration, WeightedAndUnweightedAgreeOnUnitWeights) {
  // Same seed, unit weights: the weighted Dijkstra and the BFS routine
  // solve the same optimization, so cluster counts should be in the same
  // ballpark (exact tie handling differs in degenerate integer cases).
  const CsrGraph topo = grid2d(20, 20);
  PartitionOptions opt;
  opt.beta = 0.15;
  opt.seed = 21;
  const Decomposition unweighted = partition(topo, opt);
  const WeightedDecomposition weighted =
      weighted_partition(with_unit_weights(topo), opt);
  const double ku = unweighted.num_clusters();
  const double kw = weighted.num_clusters();
  EXPECT_LT(std::fabs(ku - kw), 0.5 * std::max(ku, kw) + 5.0);
}

TEST(Integration, BlockDecompositionConsumesPartitions) {
  // High-diameter input: a (1/2, O(log n)) partition of a grid always cuts
  // something, so multiple blocks appear.
  const CsrGraph g = grid2d(25, 25);
  const BlockDecomposition blocks = block_decomposition(g);
  EXPECT_GE(blocks.num_blocks, 2u);
  // Union of blocks is the edge set.
  EXPECT_EQ(blocks.edges.size(), static_cast<std::size_t>(g.num_edges()));
}

TEST(Integration, GridImageRoundTrip) {
  // Figure 1's artifact at reduced scale: render and re-read the PPM.
  const vertex_t side = 32;
  const CsrGraph g = grid2d(side, side);
  PartitionOptions opt;
  opt.beta = 0.1;
  opt.seed = 2;
  const Decomposition dec = partition(g, opt);
  const viz::Image img = viz::render_grid_decomposition(dec, side, side);
  const mpx::testing::TempDir tmp("integration");
  const std::string path = tmp.file("mpx_fig1_small.ppm");
  img.save_ppm(path);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string magic;
  std::size_t w = 0;
  std::size_t h = 0;
  int maxval = 0;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, side);
  EXPECT_EQ(h, side);
  EXPECT_EQ(maxval, 255);
}

}  // namespace
}  // namespace mpx
