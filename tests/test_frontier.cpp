// Tests for the frontier/traversal subsystem: the Frontier dual
// representation itself, and the engine contract — push, pull, and auto
// must produce byte-identical owner / settle_round arrays (and identical
// round and arc counters) for fixed seeds on every fixture family.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "bfs/frontier.hpp"
#include "bfs/multi_source_bfs.hpp"
#include "bfs/parallel_bfs.hpp"
#include "bfs/sequential_bfs.hpp"
#include "bfs/traversal.hpp"
#include "core/partition.hpp"
#include "core/shifts.hpp"
#include "graph/generators.hpp"
#include "parallel/parallel_for.hpp"
#include "support/random.hpp"
#include "tests/support/fixtures.hpp"
#include "tests/support/invariants.hpp"
#include "tests/support/property.hpp"

namespace mpx {
namespace {

using namespace mpx::generators;

constexpr TraversalEngine kEngines[] = {
    TraversalEngine::kPush, TraversalEngine::kPull, TraversalEngine::kAuto};

// ---------------------------------------------------------------------------
// Frontier representation
// ---------------------------------------------------------------------------

TEST(Frontier, StartsEmpty) {
  Frontier f(100);
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.size(), 0u);
  EXPECT_EQ(f.universe(), 100u);
  EXPECT_FALSE(f.contains(0));
  EXPECT_FALSE(f.contains(99));
}

TEST(Frontier, InsertSerialDedupsAndKeepsBothReps) {
  Frontier f(200);
  EXPECT_TRUE(f.insert_serial(7));
  EXPECT_TRUE(f.insert_serial(64));   // second bitmap word
  EXPECT_TRUE(f.insert_serial(199));  // last vertex
  EXPECT_FALSE(f.insert_serial(7));   // duplicate
  EXPECT_EQ(f.size(), 3u);
  EXPECT_TRUE(f.contains(7));
  EXPECT_TRUE(f.contains(64));
  EXPECT_TRUE(f.contains(199));
  EXPECT_FALSE(f.contains(8));
  const auto verts = f.vertices();
  EXPECT_EQ(std::vector<vertex_t>(verts.begin(), verts.end()),
            (std::vector<vertex_t>{7, 64, 199}));
}

TEST(Frontier, ParallelInsertThenEnsureSparseIsSortedAndDeduped) {
  // Straddle several summary blocks (> 4096 vertices) and offer duplicates
  // from a parallel loop — the compacted sparse view must be the sorted
  // set regardless of schedule.
  const vertex_t n = 3 * 4096 + 123;
  std::vector<vertex_t> members;
  for (vertex_t v = 0; v < n; v += 3) members.push_back(v);
  Frontier f(n);
  f.invalidate_sparse();
  parallel_for(std::size_t{0}, members.size() * 2, [&](std::size_t i) {
    f.insert_atomic(members[i % members.size()]);
  });
  f.ensure_sparse();
  const auto verts = f.vertices();
  EXPECT_EQ(std::vector<vertex_t>(verts.begin(), verts.end()), members);
  for (const vertex_t v : members) EXPECT_TRUE(f.contains(v));
  EXPECT_FALSE(f.contains(1));
}

TEST(Frontier, MergeWordMatchesPerBitInserts) {
  Frontier a(300);
  Frontier b(300);
  a.invalidate_sparse();
  b.invalidate_sparse();
  const std::uint64_t bits = 0xDEADBEEFCAFE1234ULL;
  a.merge_word(2, bits);
  for (unsigned i = 0; i < 64; ++i) {
    if ((bits >> i) & 1u) {
      b.insert_atomic(static_cast<vertex_t>(2 * 64 + i));
    }
  }
  a.ensure_sparse();
  b.ensure_sparse();
  const auto av = a.vertices();
  const auto bv = b.vertices();
  EXPECT_EQ(std::vector<vertex_t>(av.begin(), av.end()),
            std::vector<vertex_t>(bv.begin(), bv.end()));
}

TEST(Frontier, ClearEmptiesAndIsReusable) {
  Frontier f(10000);
  f.invalidate_sparse();
  for (vertex_t v = 0; v < 10000; v += 7) f.insert_atomic(v);
  f.ensure_sparse();
  EXPECT_GT(f.size(), 0u);
  f.clear();
  EXPECT_TRUE(f.empty());
  for (vertex_t v = 0; v < 10000; ++v) {
    ASSERT_FALSE(f.contains(v)) << v;
  }
  // Reuse after clear goes through the serial path again.
  EXPECT_TRUE(f.insert_serial(4242));
  EXPECT_TRUE(f.contains(4242));
  EXPECT_EQ(f.size(), 1u);
}

TEST(Frontier, AssignReplacesContents) {
  Frontier f(64);
  f.assign(std::vector<vertex_t>{5, 5, 63, 0});
  EXPECT_EQ(f.size(), 3u);  // duplicate collapsed
  f.assign(std::vector<vertex_t>{1});
  EXPECT_EQ(f.size(), 1u);
  EXPECT_FALSE(f.contains(5));
  EXPECT_TRUE(f.contains(1));
}

TEST(Frontier, WordBoundaryUniverses) {
  for (const vertex_t n : {1u, 63u, 64u, 65u, 4096u, 4097u}) {
    Frontier f(n);
    f.invalidate_sparse();
    for (vertex_t v = 0; v < n; ++v) f.insert_atomic(v);
    f.ensure_sparse();
    EXPECT_EQ(f.size(), static_cast<std::size_t>(n)) << "n=" << n;
    f.clear();
    EXPECT_TRUE(f.empty());
  }
}

// ---------------------------------------------------------------------------
// Engine identity: push == pull == auto, bit for bit
// ---------------------------------------------------------------------------

Shifts shifts_for(vertex_t n, double beta, std::uint64_t seed) {
  PartitionOptions opt;
  opt.beta = beta;
  opt.seed = seed;
  return generate_shifts(n, opt);
}

TEST(TraversalEngines, IdenticalDelayedBfsAcrossFixtureFamilies) {
  for (const auto& [name, g] : mpx::testing::canonical_graphs()) {
    for (const std::uint64_t seed : {3u, 11u}) {
      SCOPED_TRACE(name + " seed=" + std::to_string(seed));
      const Shifts shifts = shifts_for(g.num_vertices(), 0.2, seed);
      const MultiSourceBfsResult push = delayed_multi_source_bfs(
          g, shifts.start_round, shifts.rank, kInfDist,
          TraversalEngine::kPush);
      for (const TraversalEngine engine :
           {TraversalEngine::kPull, TraversalEngine::kAuto}) {
        const MultiSourceBfsResult other = delayed_multi_source_bfs(
            g, shifts.start_round, shifts.rank, kInfDist, engine);
        ASSERT_EQ(other.owner, push.owner)
            << traversal_engine_name(engine);
        ASSERT_EQ(other.settle_round, push.settle_round)
            << traversal_engine_name(engine);
        EXPECT_EQ(other.rounds, push.rounds);
        EXPECT_EQ(other.arcs_scanned, push.arcs_scanned);
      }
    }
  }
}

TEST(TraversalEngines, IdenticalOnDegenerateInputs) {
  for (const auto& [name, g] : mpx::testing::degenerate_graphs()) {
    SCOPED_TRACE(name);
    const Shifts shifts = shifts_for(g.num_vertices(), 0.5, 1);
    const MultiSourceBfsResult push = delayed_multi_source_bfs(
        g, shifts.start_round, shifts.rank, kInfDist, TraversalEngine::kPush);
    for (const TraversalEngine engine :
         {TraversalEngine::kPull, TraversalEngine::kAuto}) {
      const MultiSourceBfsResult other = delayed_multi_source_bfs(
          g, shifts.start_round, shifts.rank, kInfDist, engine);
      EXPECT_EQ(other.owner, push.owner);
      EXPECT_EQ(other.settle_round, push.settle_round);
      EXPECT_EQ(other.rounds, push.rounds);
    }
  }
}

TEST(TraversalEngines, IdenticalUnderRoundTruncation) {
  const CsrGraph g = grid2d(30, 30);
  const Shifts shifts = shifts_for(g.num_vertices(), 0.05, 9);
  for (const std::uint32_t max_rounds : {0u, 1u, 3u, 10u}) {
    SCOPED_TRACE("max_rounds=" + std::to_string(max_rounds));
    const MultiSourceBfsResult push = delayed_multi_source_bfs(
        g, shifts.start_round, shifts.rank, max_rounds,
        TraversalEngine::kPush);
    for (const TraversalEngine engine :
         {TraversalEngine::kPull, TraversalEngine::kAuto}) {
      const MultiSourceBfsResult other = delayed_multi_source_bfs(
          g, shifts.start_round, shifts.rank, max_rounds, engine);
      EXPECT_EQ(other.owner, push.owner);
      EXPECT_EQ(other.settle_round, push.settle_round);
    }
  }
}

TEST(TraversalEngines, PartitionIdenticalThroughOptions) {
  const CsrGraph g = rmat(10, 5.0, 23);
  PartitionOptions opt;
  opt.beta = 0.15;
  opt.seed = 77;
  opt.engine = TraversalEngine::kPush;
  const Decomposition push = partition(g, opt);
  for (const TraversalEngine engine :
       {TraversalEngine::kPull, TraversalEngine::kAuto}) {
    opt.engine = engine;
    const Decomposition other = partition(g, opt);
    ASSERT_EQ(std::vector<cluster_t>(other.assignment().begin(),
                                     other.assignment().end()),
              std::vector<cluster_t>(push.assignment().begin(),
                                     push.assignment().end()));
    ASSERT_EQ(std::vector<vertex_t>(other.centers().begin(),
                                    other.centers().end()),
              std::vector<vertex_t>(push.centers().begin(),
                                    push.centers().end()));
    EXPECT_TRUE(mpx::testing::check_decomposition_invariants(
        other, g, {.beta = 0.15}));
  }
}

TEST(TraversalEngines, IdenticalAtScaleWithRealPullRounds) {
  // Regression: the small fixtures above never leave the engine's serial
  // round path, so kAuto never actually pulls there. This graph is large
  // and skewed enough that auto executes genuine pull rounds AND returns
  // to push afterwards — the transition once dropped the pull round's
  // frontier on the floor (stale-valid sparse view) and produced owners
  // that diverged from push.
  const CsrGraph g = rmat(16, 8.0, 1);
  const Shifts shifts = shifts_for(g.num_vertices(), 0.1, 2013);
  const MultiSourceBfsResult push = delayed_multi_source_bfs(
      g, shifts.start_round, shifts.rank, kInfDist, TraversalEngine::kPush);
  const MultiSourceBfsResult autod = delayed_multi_source_bfs(
      g, shifts.start_round, shifts.rank, kInfDist, TraversalEngine::kAuto);
  // The scenario must actually exercise the pull machinery and the
  // pull->push handoff (pull rounds strictly inside the round range).
  ASSERT_GT(autod.pull_rounds, 0u);
  ASSERT_LT(autod.pull_rounds, autod.rounds);
  EXPECT_EQ(autod.owner, push.owner);
  EXPECT_EQ(autod.settle_round, push.settle_round);
  EXPECT_EQ(autod.rounds, push.rounds);
  EXPECT_EQ(autod.arcs_scanned, push.arcs_scanned);
}

TEST(TraversalEngines, RandomizedPropertyIdentity) {
  mpx::testing::for_each_seed(5, [](std::uint64_t seed) {
    Xoshiro256pp rng(seed);
    const CsrGraph g = mpx::testing::random_graph(rng, 1500, 6.0);
    const Shifts shifts = shifts_for(g.num_vertices(), 0.25, seed);
    const MultiSourceBfsResult push = delayed_multi_source_bfs(
        g, shifts.start_round, shifts.rank, kInfDist, TraversalEngine::kPush);
    const MultiSourceBfsResult pull = delayed_multi_source_bfs(
        g, shifts.start_round, shifts.rank, kInfDist, TraversalEngine::kPull);
    const MultiSourceBfsResult autod = delayed_multi_source_bfs(
        g, shifts.start_round, shifts.rank, kInfDist, TraversalEngine::kAuto);
    EXPECT_EQ(push.owner, pull.owner);
    EXPECT_EQ(push.owner, autod.owner);
    EXPECT_EQ(push.settle_round, pull.settle_round);
    EXPECT_EQ(push.settle_round, autod.settle_round);
  });
}

// ---------------------------------------------------------------------------
// Work accounting: arcs_scanned is exact, engine-independent
// ---------------------------------------------------------------------------

TEST(TraversalEngines, ArcsScannedExactlySumsSettledDegrees) {
  for (const auto& [name, g] : mpx::testing::canonical_graphs()) {
    const Shifts shifts = shifts_for(g.num_vertices(), 0.2, 5);
    for (const TraversalEngine engine : kEngines) {
      SCOPED_TRACE(name + " engine=" +
                   std::string(traversal_engine_name(engine)));
      const MultiSourceBfsResult r = delayed_multi_source_bfs(
          g, shifts.start_round, shifts.rank, kInfDist, engine);
      edge_t expected = 0;
      for (vertex_t v = 0; v < g.num_vertices(); ++v) {
        if (r.owner[v] != kInvalidVertex) {
          expected += static_cast<edge_t>(g.degree(v));
        }
      }
      EXPECT_EQ(r.arcs_scanned, expected);
    }
  }
}

// ---------------------------------------------------------------------------
// Plain BFS on the engine
// ---------------------------------------------------------------------------

TEST(TraversalEngines, PlainBfsStrategiesAgreeWithSequential) {
  for (const auto& [name, g] : mpx::testing::canonical_graphs()) {
    if (g.num_vertices() == 0) continue;
    SCOPED_TRACE(name);
    const auto expected = bfs_distances(g, 0);
    const ParallelBfsResult top = parallel_bfs(g, 0, BfsStrategy::kTopDown);
    const ParallelBfsResult opt =
        parallel_bfs(g, 0, BfsStrategy::kDirectionOptimizing);
    EXPECT_EQ(top.dist, expected);
    EXPECT_EQ(opt.dist, expected);
    EXPECT_EQ(top.rounds, opt.rounds);
  }
}

}  // namespace
}  // namespace mpx
