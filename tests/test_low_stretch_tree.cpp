// Tests for contraction, the AKPW low-stretch tree, and the LCA-based
// tree-distance oracle.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/contraction.hpp"
#include "apps/low_stretch_tree.hpp"
#include "bfs/sequential_bfs.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"

namespace mpx {
namespace {

using namespace mpx::generators;

TEST(Contraction, QuotientOfPathBlocks) {
  const CsrGraph g = path(6);
  const std::vector<cluster_t> assignment = {0, 0, 1, 1, 2, 2};
  const ContractionResult r = contract_clusters(g, assignment, 3);
  EXPECT_EQ(r.graph.num_vertices(), 3u);
  EXPECT_EQ(r.graph.num_edges(), 2u);
  ASSERT_EQ(r.representative.size(), 2u);
  // Quotient edge 0-1 is realized by original edge 1-2; 1-2 by 3-4.
  EXPECT_EQ(r.representative[0].u, 1u);
  EXPECT_EQ(r.representative[0].v, 2u);
  EXPECT_EQ(r.representative[1].u, 3u);
  EXPECT_EQ(r.representative[1].v, 4u);
}

TEST(Contraction, CollapsesParallelEdgesDeterministically) {
  const CsrGraph g = cycle(6);
  const std::vector<cluster_t> assignment = {0, 0, 0, 1, 1, 1};
  const ContractionResult r = contract_clusters(g, assignment, 2);
  EXPECT_EQ(r.graph.num_edges(), 1u);  // edges 2-3 and 5-0 collapse
  // The smallest realizing edge is kept: (0,5) sorts before (2,3).
  EXPECT_EQ(r.representative[0].u, 0u);
  EXPECT_EQ(r.representative[0].v, 5u);
}

TEST(Contraction, RepresentativePropagation) {
  // Two-level contraction: reps must refer to the original graph.
  const CsrGraph g = path(8);
  const std::vector<cluster_t> level1 = {0, 0, 1, 1, 2, 2, 3, 3};
  const ContractionResult r1 = contract_clusters(g, level1, 4);
  const std::vector<cluster_t> level2 = {0, 0, 1, 1};
  const ContractionResult r2 =
      contract_clusters(r1.graph, level2, 2,
                        std::span<const Edge>(r1.representative));
  ASSERT_EQ(r2.representative.size(), 1u);
  // The surviving quotient edge joins {0..3} to {4..7}: original edge 3-4.
  EXPECT_EQ(r2.representative[0].u, 3u);
  EXPECT_EQ(r2.representative[0].v, 4u);
}

TEST(LowStretchTree, SpanningTreeOnConnectedGraphs) {
  const CsrGraph graphs[] = {grid2d(12, 12), cycle(100),
                             erdos_renyi(200, 800, 3), hypercube(7),
                             barbell(10)};
  for (const CsrGraph& g : graphs) {
    const LowStretchTreeResult r = low_stretch_tree(g);
    EXPECT_EQ(r.tree.num_vertices(), g.num_vertices());
    EXPECT_EQ(r.tree.num_edges(),
              static_cast<edge_t>(g.num_vertices()) - 1);
    EXPECT_TRUE(is_connected(r.tree));
    EXPECT_GE(r.levels, 1u);
  }
}

TEST(LowStretchTree, SpanningForestOnDisconnectedGraphs) {
  const CsrGraph g = disjoint_copies(grid2d(6, 6), 3);
  const LowStretchTreeResult r = low_stretch_tree(g);
  EXPECT_EQ(r.tree.num_edges(),
            static_cast<edge_t>(g.num_vertices()) - 3);
  EXPECT_EQ(connected_components(r.tree).count, 3u);
}

TEST(LowStretchTree, TreeEdgesAreGraphEdges) {
  const CsrGraph g = erdos_renyi(150, 600, 5);
  const LowStretchTreeResult r = low_stretch_tree(g);
  for (vertex_t u = 0; u < r.tree.num_vertices(); ++u) {
    for (const vertex_t v : r.tree.neighbors(u)) {
      EXPECT_TRUE(g.has_edge(u, v));
    }
  }
}

TEST(LowStretchTree, TreeInputIsItself) {
  const CsrGraph g = complete_binary_tree(63);
  const LowStretchTreeResult r = low_stretch_tree(g);
  EXPECT_EQ(r.tree.num_edges(), g.num_edges());
  const EdgeStretch s = edge_stretch(g, r.tree);
  EXPECT_DOUBLE_EQ(s.average, 1.0);
  EXPECT_EQ(s.maximum, 1u);
}

TEST(LowStretchTree, StretchIsModestOnGrids) {
  const CsrGraph g = grid2d(20, 20);
  const LowStretchTreeResult r = low_stretch_tree(g);
  const EdgeStretch s = edge_stretch(g, r.tree);
  // AKPW-style average stretch on a 400-vertex grid should be far below
  // the worst case (grid side = 20).
  EXPECT_LT(s.average, 40.0);
  EXPECT_GE(s.average, 1.0);
}

TEST(LowStretchTree, SeedDeterminism) {
  const CsrGraph g = erdos_renyi(100, 300, 7);
  LowStretchTreeOptions opt;
  opt.seed = 11;
  const LowStretchTreeResult a = low_stretch_tree(g, opt);
  const LowStretchTreeResult b = low_stretch_tree(g, opt);
  EXPECT_TRUE(std::equal(a.tree.targets().begin(), a.tree.targets().end(),
                         b.tree.targets().begin()));
}

TEST(TreeOracle, DistancesMatchBfsOnRandomTrees) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    // Random spanning tree of an ER graph via low_stretch_tree.
    const CsrGraph g = erdos_renyi(120, 500, seed);
    LowStretchTreeOptions opt;
    opt.seed = seed;
    const CsrGraph tree = low_stretch_tree(g, opt).tree;
    const TreeDistanceOracle oracle(tree);
    for (vertex_t u = 0; u < tree.num_vertices(); u += 17) {
      const auto dist = bfs_distances(tree, u);
      for (vertex_t v = 0; v < tree.num_vertices(); ++v) {
        EXPECT_EQ(oracle.distance(u, v), dist[v]) << u << "->" << v;
      }
    }
  }
}

TEST(TreeOracle, PathTreeDistances) {
  const CsrGraph tree = path(50);
  const TreeDistanceOracle oracle(tree);
  EXPECT_EQ(oracle.distance(0, 49), 49u);
  EXPECT_EQ(oracle.distance(10, 10), 0u);
  EXPECT_EQ(oracle.distance(7, 3), 4u);
  EXPECT_EQ(oracle.lca(3, 7), 3u);  // rooted at 0
}

TEST(TreeOracle, LcaOnBinaryTree) {
  const CsrGraph tree = complete_binary_tree(15);
  const TreeDistanceOracle oracle(tree);
  EXPECT_EQ(oracle.lca(7, 8), 3u);   // siblings under 3
  EXPECT_EQ(oracle.lca(7, 14), 0u);  // opposite subtrees
  EXPECT_EQ(oracle.lca(3, 7), 3u);   // ancestor
  EXPECT_EQ(oracle.distance(7, 8), 2u);
  EXPECT_EQ(oracle.distance(7, 14), 6u);
}

TEST(TreeOracle, CrossComponentQueriesAreInf) {
  const CsrGraph forest = disjoint_copies(path(5), 2);
  const TreeDistanceOracle oracle(forest);
  EXPECT_EQ(oracle.distance(0, 7), kInfDist);
  EXPECT_EQ(oracle.lca(0, 7), kInvalidVertex);
  EXPECT_EQ(oracle.distance(5, 9), 4u);
}

TEST(EdgeStretchMetric, CycleWorstCase) {
  // Spanning tree of a cycle = path; the closing edge stretches n-1.
  const CsrGraph g = cycle(32);
  const LowStretchTreeResult r = low_stretch_tree(g);
  const EdgeStretch s = edge_stretch(g, r.tree);
  EXPECT_EQ(s.maximum, 31u);
  EXPECT_NEAR(s.average, (31.0 + 31.0) / 32.0, 1.0);
}

}  // namespace
}  // namespace mpx
