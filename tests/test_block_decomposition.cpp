// Tests for the Linial-Saks block decomposition via iterated LDD.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/block_decomposition.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "graph/subgraph.hpp"

namespace mpx {
namespace {

using namespace mpx::generators;

TEST(Blocks, EveryEdgeGetsExactlyOneBlock) {
  const CsrGraph g = grid2d(15, 15);
  const BlockDecomposition blocks = block_decomposition(g);
  EXPECT_EQ(blocks.edges.size(), static_cast<std::size_t>(g.num_edges()));
  for (const std::uint32_t b : blocks.block) {
    EXPECT_LT(b, blocks.num_blocks);
  }
}

TEST(Blocks, BlockCountIsLogarithmic) {
  const CsrGraph g = erdos_renyi(1000, 4000, 3);
  const BlockDecomposition blocks = block_decomposition(g);
  // Expected: each iteration keeps >= half the edges, so ~log2(m) blocks.
  const double log2m = std::log2(static_cast<double>(g.num_edges()));
  EXPECT_LE(blocks.num_blocks, static_cast<std::uint32_t>(3 * log2m) + 4);
  EXPECT_GE(blocks.num_blocks, 1u);
}

TEST(Blocks, ComponentsOfEveryBlockHaveSmallDiameter) {
  // The defining property: every connected component of each block's
  // spanning subgraph has diameter O(log n).
  const CsrGraph g = grid2d(20, 20);
  BlockDecompositionOptions opt;
  opt.seed = 7;
  const BlockDecomposition blocks = block_decomposition(g, opt);
  const double bound =
      6.0 * std::log(static_cast<double>(g.num_vertices())) / opt.beta;
  for (std::uint32_t b = 0; b < blocks.num_blocks; ++b) {
    const CsrGraph sub = block_subgraph(blocks, g.num_vertices(), b);
    const Components comps = connected_components(sub);
    // Check each nontrivial component's diameter via its induced subgraph.
    std::vector<std::vector<vertex_t>> members(g.num_vertices());
    for (vertex_t v = 0; v < g.num_vertices(); ++v) {
      members[comps.label[v]].push_back(v);
    }
    for (const auto& comp : members) {
      if (comp.size() < 2) continue;
      const Subgraph induced = induced_subgraph(sub, comp);
      EXPECT_LE(static_cast<double>(exact_diameter(induced.graph)), bound)
          << "block " << b;
    }
  }
}

TEST(Blocks, FirstBlockHoldsAtLeastAThirdOfEdges) {
  // In expectation the first iteration keeps ~(1 - beta') > half of m.
  const CsrGraph g = erdos_renyi(800, 3000, 9);
  const BlockDecomposition blocks = block_decomposition(g);
  std::size_t first = 0;
  for (const std::uint32_t b : blocks.block) {
    if (b == 0) ++first;
  }
  EXPECT_GE(first, blocks.edges.size() / 3);
}

TEST(Blocks, BlockSubgraphContainsExactlyItsEdges) {
  const CsrGraph g = cycle(50);
  const BlockDecomposition blocks = block_decomposition(g);
  edge_t total = 0;
  for (std::uint32_t b = 0; b < blocks.num_blocks; ++b) {
    total += block_subgraph(blocks, g.num_vertices(), b).num_edges();
  }
  EXPECT_EQ(total, g.num_edges());
}

TEST(Blocks, SeedDeterminism) {
  const CsrGraph g = grid2d(12, 12);
  BlockDecompositionOptions opt;
  opt.seed = 42;
  const BlockDecomposition a = block_decomposition(g, opt);
  const BlockDecomposition b = block_decomposition(g, opt);
  EXPECT_EQ(a.block, b.block);
  EXPECT_EQ(a.num_blocks, b.num_blocks);
}

TEST(Blocks, TreeInputFitsInOneOrTwoBlocks) {
  // A tree decomposes with zero... few cut edges per round.
  const CsrGraph g = complete_binary_tree(127);
  const BlockDecomposition blocks = block_decomposition(g);
  EXPECT_LE(blocks.num_blocks, 8u);
}

TEST(Blocks, EdgelessGraph) {
  const std::vector<Edge> none;
  const CsrGraph g = build_undirected(5, std::span<const Edge>(none));
  const BlockDecomposition blocks = block_decomposition(g);
  EXPECT_EQ(blocks.num_blocks, 0u);
  EXPECT_TRUE(blocks.edges.empty());
}

}  // namespace
}  // namespace mpx
