// Tests for apps/contraction (cluster quotient graphs): structural
// invariants of the quotient, representative-edge provenance, round trips
// with real decomposition output, and the multi-level provenance chain the
// AKPW recursion depends on.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>

#include "apps/contraction.hpp"
#include "core/decomposer.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "tests/support/fixtures.hpp"

namespace mpx {
namespace {

using mpx::testing::NamedGraph;

/// Canonical (min, max) form of an edge for set membership.
std::pair<vertex_t, vertex_t> canon(const Edge& e) {
  return {std::min(e.u, e.v), std::max(e.u, e.v)};
}

TEST(Contraction, QuotientOfReferenceDecompositionIsASingleEdge) {
  const CsrGraph g = generators::grid2d(3, 3);
  const Decomposition dec = mpx::testing::grid3x3_reference_decomposition();
  const ContractionResult r =
      contract_clusters(g, dec.assignment(), dec.num_clusters());

  // Two pieces, adjacent: the quotient is K2.
  EXPECT_EQ(r.graph.num_vertices(), 2u);
  EXPECT_EQ(r.graph.num_edges(), 1u);
  ASSERT_EQ(r.quotient_edges.size(), 1u);
  EXPECT_EQ(r.quotient_edges[0], (Edge{0, 1}));
  // The representative is the smallest boundary edge of the input graph:
  // {0, 3} (vertex 0 in piece A, vertex 3 in piece B).
  ASSERT_EQ(r.representative.size(), 1u);
  EXPECT_EQ(canon(r.representative[0]), (std::pair<vertex_t, vertex_t>{0, 3}));
}

// The quotient-graph invariants, on real partitions across the corpus:
//  * one quotient vertex per cluster,
//  * an edge between two clusters iff some input edge crosses them,
//  * no self-loops (internal edges vanish),
//  * every representative is a real input edge crossing exactly the
//    cluster pair its quotient edge names.
TEST(Contraction, QuotientInvariantsAcrossCorpus) {
  for (const NamedGraph& ng : mpx::testing::small_graphs()) {
    SCOPED_TRACE(ng.name);
    DecompositionRequest req;
    req.beta = 0.3;
    req.seed = 23;
    const Decomposition dec = decompose(ng.graph, req).decomposition;
    const ContractionResult r =
        contract_clusters(ng.graph, dec.assignment(), dec.num_clusters());

    EXPECT_EQ(r.graph.num_vertices(), dec.num_clusters());
    EXPECT_TRUE(r.graph.is_symmetric());
    ASSERT_EQ(r.quotient_edges.size(), r.representative.size());
    ASSERT_EQ(r.quotient_edges.size(), r.graph.num_edges());

    // Expected adjacent cluster pairs, from the input graph directly.
    std::set<std::pair<cluster_t, cluster_t>> expected;
    for (vertex_t u = 0; u < ng.graph.num_vertices(); ++u) {
      for (const vertex_t v : ng.graph.neighbors(u)) {
        const cluster_t cu = dec.cluster_of(u);
        const cluster_t cv = dec.cluster_of(v);
        if (cu != cv) expected.insert({std::min(cu, cv), std::max(cu, cv)});
      }
    }
    std::set<std::pair<cluster_t, cluster_t>> got;
    for (std::size_t i = 0; i < r.quotient_edges.size(); ++i) {
      const Edge& qe = r.quotient_edges[i];
      EXPECT_NE(qe.u, qe.v) << "self-loop in quotient";
      got.insert(canon(qe));
      // Provenance: the representative is a real input edge crossing
      // exactly this cluster pair.
      const Edge& rep = r.representative[i];
      EXPECT_TRUE(ng.graph.has_edge(rep.u, rep.v))
          << rep.u << "-" << rep.v << " is not an edge of the input";
      const std::pair<cluster_t, cluster_t> rep_pair = {
          std::min(dec.cluster_of(rep.u), dec.cluster_of(rep.v)),
          std::max(dec.cluster_of(rep.u), dec.cluster_of(rep.v))};
      EXPECT_EQ(rep_pair, canon(qe));
    }
    EXPECT_EQ(got, expected);
  }
}

TEST(Contraction, RoundTripWithDecompositionOutput) {
  // Contract, then reconstruct the cut structure from the quotient: every
  // input edge is either internal to a cluster or maps to a quotient edge,
  // and the quotient carries no other edges — together the partition's cut
  // edges and the quotient are the same object at two granularities.
  for (const NamedGraph& ng : mpx::testing::small_graphs()) {
    SCOPED_TRACE(ng.name);
    DecompositionRequest req;
    req.beta = 0.4;
    req.seed = 5;
    const Decomposition dec = decompose(ng.graph, req).decomposition;
    const ContractionResult r =
        contract_clusters(ng.graph, dec.assignment(), dec.num_clusters());

    edge_t cut_edges = 0;
    for (const Edge& e : edge_list(ng.graph)) {
      const cluster_t cu = dec.cluster_of(e.u);
      const cluster_t cv = dec.cluster_of(e.v);
      if (cu == cv) continue;
      ++cut_edges;
      EXPECT_TRUE(
          r.graph.has_edge(std::min(cu, cv), std::max(cu, cv)))
          << "cut edge " << e.u << "-" << e.v << " missing from quotient";
    }
    // Parallel cut edges collapse, so the quotient is no bigger than the
    // cut — and empty exactly when the cut is.
    EXPECT_LE(r.graph.num_edges(), cut_edges);
    EXPECT_EQ(r.graph.num_edges() == 0, cut_edges == 0);
  }
}

TEST(Contraction, SingletonClustersReproduceTheGraph) {
  // Contracting the discrete partition (every vertex its own cluster) is
  // the identity on simple graphs.
  const CsrGraph g = generators::grid2d(4, 5);
  std::vector<cluster_t> assignment(g.num_vertices());
  for (vertex_t v = 0; v < g.num_vertices(); ++v) assignment[v] = v;
  const ContractionResult r = contract_clusters(
      g, assignment, static_cast<cluster_t>(g.num_vertices()));
  EXPECT_EQ(r.graph.num_vertices(), g.num_vertices());
  EXPECT_EQ(r.graph.num_edges(), g.num_edges());
  for (std::size_t i = 0; i < r.quotient_edges.size(); ++i) {
    EXPECT_EQ(canon(r.quotient_edges[i]), canon(r.representative[i]));
  }
}

TEST(Contraction, OneClusterContractsToAPoint) {
  const CsrGraph g = generators::complete(6);
  const std::vector<cluster_t> assignment(g.num_vertices(), 0);
  const ContractionResult r = contract_clusters(g, assignment, 1);
  EXPECT_EQ(r.graph.num_vertices(), 1u);
  EXPECT_EQ(r.graph.num_edges(), 0u);
  EXPECT_TRUE(r.quotient_edges.empty());
}

TEST(Contraction, RepresentativesChainThroughTwoLevels) {
  // Level 0: contract a 6x6 grid partition. Level 1: contract the quotient
  // again, passing level 0's representatives through rep_of_edge. Every
  // level-1 representative must still be an edge of the *original* graph
  // crossing the composed cluster pair — the provenance chain the AKPW
  // low-stretch recursion maps tree edges back with.
  const CsrGraph g = generators::grid2d(6, 6);
  DecompositionRequest req;
  req.beta = 0.6;
  req.seed = 11;
  const Decomposition dec0 = decompose(g, req).decomposition;
  const ContractionResult level0 =
      contract_clusters(g, dec0.assignment(), dec0.num_clusters());
  if (level0.graph.num_edges() == 0) GTEST_SKIP() << "quotient already trivial";

  req.seed = 12;
  const Decomposition dec1 = decompose(level0.graph, req).decomposition;
  const ContractionResult level1 = contract_clusters(
      level0.graph, dec1.assignment(), dec1.num_clusters(),
      std::span<const Edge>(level0.representative));

  for (std::size_t i = 0; i < level1.quotient_edges.size(); ++i) {
    const Edge& rep = level1.representative[i];
    EXPECT_TRUE(g.has_edge(rep.u, rep.v))
        << "level-1 representative is not an original edge";
    // Composed assignment: original vertex -> level-0 cluster -> level-1
    // cluster; the representative's endpoints must land on the quotient
    // edge's two endpoints.
    const cluster_t cu = dec1.cluster_of(dec0.cluster_of(rep.u));
    const cluster_t cv = dec1.cluster_of(dec0.cluster_of(rep.v));
    EXPECT_EQ((std::pair<cluster_t, cluster_t>{std::min(cu, cv),
                                               std::max(cu, cv)}),
              canon(level1.quotient_edges[i]));
  }
}

}  // namespace
}  // namespace mpx
