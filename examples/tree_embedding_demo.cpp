// Hierarchical tree embedding demo: embed a graph metric into a dominating
// tree metric via recursive MPX decomposition and measure distortion.
//
//   ./tree_embedding_demo [grid_side] [--seed N]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "example_cli.hpp"
#include "mpx/mpx.hpp"

int main(int argc, char** argv) {
  const mpx::examples::Args args = mpx::examples::parse_args(argc, argv);
  const mpx::vertex_t side =
      static_cast<mpx::vertex_t>(args.pos_int(0, 48));
  const mpx::CsrGraph g = mpx::generators::grid2d(side, side);
  std::printf("input: %ux%u grid (n=%u)\n", side, side, g.num_vertices());

  mpx::TreeEmbeddingOptions opt;
  opt.seed = args.seed_or(2013);
  mpx::WallTimer timer;
  const mpx::TreeEmbedding tree = mpx::build_tree_embedding(g, opt);
  std::printf("hierarchy: %u levels, %zu tree nodes (%.3fs)\n",
              tree.levels(), tree.num_nodes(), timer.seconds());

  const mpx::DistortionSample s = mpx::measure_distortion(g, tree, 50, 7);
  std::printf("distortion over %zu sampled pairs: mean %.2f, max %.2f "
              "(ln n = %.2f)\n",
              s.pairs_measured, s.mean_distortion, s.max_distortion,
              std::log(static_cast<double>(g.num_vertices())));
  std::printf("domination violations: %zu (guaranteed 0: the tree metric "
              "never underestimates the graph metric)\n",
              s.domination_violations);

  const mpx::vertex_t a = 0;
  const mpx::vertex_t b = g.num_vertices() - 1;
  std::printf("corner pair: graph distance %u, tree distance %.1f\n",
              2 * (side - 1), tree.distance(a, b));
  return s.domination_violations == 0 ? 0 : 1;
}
