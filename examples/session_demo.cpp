// DecompositionSession demo: one graph, a ladder of betas, and the queries
// a decomposition service answers — the in-process core of the serving
// layer (core/session.hpp).
//
//   ./session_demo [side] [seed]   (--seed N overrides the positional seed)
#include <cstdio>
#include <cstdlib>

#include "example_cli.hpp"
#include "mpx/mpx.hpp"

int main(int argc, char** argv) {
  const mpx::examples::Args args = mpx::examples::parse_args(argc, argv);
  const mpx::vertex_t side =
      static_cast<mpx::vertex_t>(args.pos_int(0, 120));
  const std::uint64_t seed = args.seed_or(1, 42);

  // A session owns the graph plus a reusable workspace and a result cache.
  // (Production path: DecompositionSession::open_snapshot("graph.mpxs")
  // mmaps a snapshot zero-copy instead of generating.)
  mpx::DecompositionSession session(mpx::generators::grid2d(side, side));
  std::printf("session over a %ux%u grid: n=%u, m=%llu\n", side, side,
              session.topology().num_vertices(),
              static_cast<unsigned long long>(session.topology().num_edges()));

  // Batch: maintain decompositions at several betas, as the spanner /
  // hopset pipelines do. The exponential draws happen once per seed; each
  // beta derives its shifts from them (bitwise-identical to cold runs).
  mpx::DecompositionRequest req;
  req.seed = seed;
  const double betas[] = {0.5, 0.2, 0.05, 0.02};
  const auto results = session.run_batch(req, betas);
  std::printf("%8s %10s %12s %10s\n", "beta", "clusters", "cut_edges",
              "rounds");
  for (std::size_t i = 0; i < results.size(); ++i) {
    req.beta = betas[i];
    std::printf("%8g %10u %12zu %10u\n", betas[i],
                results[i]->num_clusters(),
                session.boundary_arcs(req).size(),
                results[i]->telemetry.rounds);
  }

  // Queries against a cached decomposition: cluster membership and
  // distance-oracle estimates (lazily built per result, O(1) per query).
  req.beta = 0.05;
  const mpx::vertex_t u = 0;
  const mpx::vertex_t v = session.topology().num_vertices() - 1;
  std::printf("cluster_of(%u) = %u (center %u)\n", u,
              session.cluster_of(u, req), session.owner_of(u, req));
  std::printf("estimate_distance(%u, %u) = %u (true distance %u)\n", u, v,
              session.estimate_distance(u, v, req),
              2 * (side - 1));
  std::printf("cache: %zu decompositions resident\n", session.cache_size());

  // Re-running any cached request is free.
  const mpx::DecompositionResult& again = session.run(req);
  std::printf("re-run of beta=%g served from cache: %u clusters\n", req.beta,
              again.num_clusters());
  return 0;
}
