// Quickstart: decompose a graph through the unified decomposer facade,
// inspect the pieces and the run telemetry, verify the guarantees. Mirrors
// the README's first example.
//
//   ./quickstart [beta] [seed]     (--seed N overrides the positional seed)
#include <cstdio>
#include <cstdlib>

#include "example_cli.hpp"
#include "mpx/mpx.hpp"

int main(int argc, char** argv) {
  const mpx::examples::Args args = mpx::examples::parse_args(argc, argv);
  const double beta = args.pos_double(0, 0.05);
  const std::uint64_t seed = args.seed_or(1, 42);

  // 1. Build a graph (here: a 200x200 grid; see mpx::generators for more,
  //    or mpx::build_undirected / mpx::io::load_graph for your own).
  const mpx::CsrGraph g = mpx::generators::grid2d(200, 200);
  std::printf("graph: n = %u vertices, m = %llu edges\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  // 2. Describe the run: every algorithm in the library answers the same
  //    request shape ("mpx" is Algorithm 1 of the paper; see
  //    mpx::registered_algorithms() for the rest).
  mpx::DecompositionRequest req;
  req.algorithm = "mpx";
  req.beta = beta;
  req.seed = seed;

  // 3. Run it. The result carries the owner/settle arrays, the compacted
  //    decomposition, and uniform telemetry for every algorithm.
  const mpx::DecompositionResult result = mpx::decompose(g, req);
  const mpx::Decomposition& dec = result.decomposition;
  std::printf("decompose(%s, beta=%.3f, seed=%llu): %u clusters in %.3fs "
              "(%u BFS rounds, %llu arcs scanned)\n",
              req.algorithm.c_str(), beta,
              static_cast<unsigned long long>(seed), dec.num_clusters(),
              result.telemetry.total_seconds, result.telemetry.rounds,
              static_cast<unsigned long long>(result.telemetry.arcs_scanned));

  // 4. Inspect the quality: Definition 1.1's two quantities.
  const mpx::DecompositionStats stats = mpx::analyze(dec, g);
  std::printf("cut edges: %llu (%.2f%% of m; expectation is O(beta) = "
              "%.2f%%)\n",
              static_cast<unsigned long long>(stats.cut_edges),
              100.0 * stats.cut_fraction, 100.0 * beta);
  std::printf("max radius: %u (strong diameter <= %u; O(log n / beta) "
              "bound)\n",
              stats.max_radius, stats.diameter_upper_bound());
  std::printf("cluster sizes: min %u / mean %.1f / max %u\n",
              stats.min_cluster_size, stats.mean_cluster_size,
              stats.max_cluster_size);

  // 5. Per-vertex API: which piece is a vertex in, and how far from its
  //    center?
  const mpx::vertex_t v = g.num_vertices() / 2;
  std::printf("vertex %u: cluster %u, center %u, distance-to-center %u\n",
              v, result.cluster_of(v), result.owner[v], result.settle[v]);

  // 6. Serving many decompositions of one graph? Use a session: results
  //    are cached by request, batch runs share the shift draws, and the
  //    session answers cluster/boundary/distance queries directly (see
  //    examples/session_demo.cpp).

  // 7. Hard verification (tests run this on every configuration).
  const mpx::VerifyResult vr = mpx::verify_decomposition(dec, g);
  std::printf("verify_decomposition: %s\n",
              vr.ok ? "OK" : vr.message.c_str());
  return vr.ok ? 0 : 1;
}
