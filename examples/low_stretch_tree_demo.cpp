// AKPW low-stretch spanning tree demo: iterate (partition -> in-piece BFS
// trees -> contract) and measure the average edge stretch.
//
//   ./low_stretch_tree_demo [grid_side] [beta] [--seed N]
#include <cstdio>
#include <cstdlib>

#include "example_cli.hpp"
#include "mpx/mpx.hpp"

int main(int argc, char** argv) {
  const mpx::examples::Args args = mpx::examples::parse_args(argc, argv);
  const mpx::vertex_t side =
      static_cast<mpx::vertex_t>(args.pos_int(0, 128));
  const double beta = args.pos_double(1, 0.2);

  const mpx::CsrGraph g = mpx::generators::grid2d(side, side);
  std::printf("input: %ux%u grid (n=%u, m=%llu)\n", side, side,
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  mpx::LowStretchTreeOptions opt;
  opt.beta = beta;
  opt.seed = args.seed_or(2013);
  mpx::WallTimer timer;
  const mpx::LowStretchTreeResult r = mpx::low_stretch_tree(g, opt);
  std::printf("spanning tree: %llu edges via %u contraction levels "
              "(%.3fs)\n",
              static_cast<unsigned long long>(r.tree_edge_count), r.levels,
              timer.seconds());

  const mpx::EdgeStretch s = mpx::edge_stretch(g, r.tree);
  std::printf("edge stretch in the tree: average %.2f, max %u\n", s.average,
              s.maximum);
  std::printf("(compare: a random BFS tree of a grid has average stretch "
              "Theta(side); AKPW keeps it polylog.)\n");

  // Tree distance oracle: O(log n) queries after O(n log n) preprocessing.
  const mpx::TreeDistanceOracle oracle(r.tree);
  const mpx::vertex_t a = 0;
  const mpx::vertex_t b = g.num_vertices() - 1;
  std::printf("corner-to-corner: graph distance %u, tree distance %u\n",
              2 * (side - 1), oracle.distance(a, b));
  return 0;
}
