// Minimal shared CLI handling for the examples: every example accepts
// `--seed N` (or `--seed=N`) anywhere on the command line in addition to
// its positional arguments, so CI (and scripted reproduction) can pin the
// randomness without memorizing each example's positional order.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace mpx::examples {

struct Args {
  std::vector<std::string> positional;
  std::uint64_t seed = 0;
  bool seed_set = false;

  /// Positional argument i as a string, or `fallback` when absent.
  [[nodiscard]] std::string pos(std::size_t i, const std::string& fallback) const {
    return i < positional.size() ? positional[i] : fallback;
  }
  [[nodiscard]] long long pos_int(std::size_t i, long long fallback) const {
    return i < positional.size() ? std::atoll(positional[i].c_str())
                                 : fallback;
  }
  [[nodiscard]] double pos_double(std::size_t i, double fallback) const {
    return i < positional.size() ? std::atof(positional[i].c_str())
                                 : fallback;
  }
  /// The seed: --seed wins, then positional i (if given), then `fallback`.
  [[nodiscard]] std::uint64_t seed_or(std::size_t i,
                                      std::uint64_t fallback) const {
    if (seed_set) return seed;
    return static_cast<std::uint64_t>(
        pos_int(i, static_cast<long long>(fallback)));
  }
  /// The seed for examples without a positional seed slot.
  [[nodiscard]] std::uint64_t seed_or(std::uint64_t fallback) const {
    return seed_set ? seed : fallback;
  }
};

inline Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--seed") == 0 && i + 1 < argc) {
      args.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
      args.seed_set = true;
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      args.seed = static_cast<std::uint64_t>(std::atoll(arg + 7));
      args.seed_set = true;
    } else {
      args.positional.emplace_back(arg);
    }
  }
  return args;
}

}  // namespace mpx::examples
