// Reproduce a Figure 1 panel: decompose an s x s grid and write the
// cluster coloring as a PPM image.
//
//   ./figure1_grid [side] [beta] [seed] [out.ppm]
//   (--seed N overrides the positional seed)
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "example_cli.hpp"
#include "mpx/mpx.hpp"

int main(int argc, char** argv) {
  const mpx::examples::Args args = mpx::examples::parse_args(argc, argv);
  const mpx::vertex_t side =
      static_cast<mpx::vertex_t>(args.pos_int(0, 500));
  const double beta = args.pos_double(1, 0.01);
  // Trailing positionals: an all-digit token is the seed, anything else
  // (including filenames that merely start with a digit, like
  // 2025_panel.ppm) the output path — so `--seed N` composes with an
  // output path at any position.
  std::uint64_t seed = 2013;
  std::string out = "figure1_panel.ppm";
  for (std::size_t i = 2; i < args.positional.size(); ++i) {
    const std::string& p = args.positional[i];
    const bool all_digits =
        !p.empty() && std::all_of(p.begin(), p.end(), [](unsigned char c) {
          return std::isdigit(c) != 0;
        });
    if (all_digits) {
      seed = static_cast<std::uint64_t>(std::atoll(p.c_str()));
    } else {
      out = p;
    }
  }
  if (args.seed_set) seed = args.seed;

  const mpx::CsrGraph g = mpx::generators::grid2d(side, side);
  mpx::DecompositionRequest req;
  req.beta = beta;
  req.seed = seed;

  const mpx::DecompositionResult result = mpx::decompose(g, req);
  const mpx::Decomposition& dec = result.decomposition;
  const mpx::DecompositionStats stats = mpx::analyze(dec, g);
  std::printf("%ux%u grid, beta=%.4g: %u clusters, cut %.3f%%, max radius "
              "%u (%.2fs)\n",
              side, side, beta, dec.num_clusters(),
              100.0 * stats.cut_fraction, stats.max_radius,
              result.telemetry.total_seconds);

  mpx::viz::render_grid_decomposition(dec, side, side).save_ppm(out);
  std::printf("wrote %s — compare with the paper's Figure 1 panel for "
              "beta=%.4g\n",
              out.c_str(), beta);
  return 0;
}
