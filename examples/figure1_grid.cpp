// Reproduce a Figure 1 panel: decompose an s x s grid and write the
// cluster coloring as a PPM image.
//
//   ./figure1_grid [side] [beta] [seed] [out.ppm]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "mpx/mpx.hpp"

int main(int argc, char** argv) {
  const mpx::vertex_t side =
      argc > 1 ? static_cast<mpx::vertex_t>(std::atoi(argv[1])) : 500;
  const double beta = argc > 2 ? std::atof(argv[2]) : 0.01;
  const std::uint64_t seed =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 2013;
  const std::string out = argc > 4 ? argv[4] : "figure1_panel.ppm";

  const mpx::CsrGraph g = mpx::generators::grid2d(side, side);
  mpx::PartitionOptions opt;
  opt.beta = beta;
  opt.seed = seed;

  mpx::WallTimer timer;
  const mpx::Decomposition dec = mpx::partition(g, opt);
  const mpx::DecompositionStats stats = mpx::analyze(dec, g);
  std::printf("%ux%u grid, beta=%.4g: %u clusters, cut %.3f%%, max radius "
              "%u (%.2fs)\n",
              side, side, beta, dec.num_clusters(),
              100.0 * stats.cut_fraction, stats.max_radius, timer.seconds());

  mpx::viz::render_grid_decomposition(dec, side, side).save_ppm(out);
  std::printf("wrote %s — compare with the paper's Figure 1 panel for "
              "beta=%.4g\n",
              out.c_str(), beta);
  return 0;
}
