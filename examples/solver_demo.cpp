// The paper's motivating pipeline ([9, 11]): decomposition -> low-stretch
// spanning tree -> tree preconditioner -> conjugate gradient on a graph
// Laplacian.
//
//   ./solver_demo [grid_side] [--seed N]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "example_cli.hpp"
#include "mpx/mpx.hpp"

int main(int argc, char** argv) {
  const mpx::examples::Args args = mpx::examples::parse_args(argc, argv);
  const mpx::vertex_t side =
      static_cast<mpx::vertex_t>(args.pos_int(0, 100));

  const mpx::CsrGraph topo = mpx::generators::grid2d(side, side);
  const mpx::WeightedCsrGraph g = mpx::with_unit_weights(topo);
  const mpx::LaplacianOperator lap(g);
  std::printf("Laplacian system on a %ux%u grid (n=%u)\n", side, side,
              g.num_vertices());

  // Random mean-zero right-hand side (Laplacians are singular on the
  // constant vector).
  std::vector<double> b(g.num_vertices());
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = mpx::uniform_double(mpx::hash_stream(5, i)) - 0.5;
  }
  mpx::project_mean_zero(b);

  mpx::PcgOptions opt;
  opt.tolerance = 1e-8;

  {
    const mpx::IdentityPreconditioner id;
    mpx::WallTimer timer;
    const mpx::PcgResult r = mpx::pcg_solve(lap, b, id, opt);
    std::printf("  CG (no preconditioner):   %4u iterations, residual "
                "%.2e, %.3fs\n",
                r.iterations, r.relative_residual, timer.seconds());
  }
  {
    const mpx::JacobiPreconditioner jacobi(g);
    mpx::WallTimer timer;
    const mpx::PcgResult r = mpx::pcg_solve(lap, b, jacobi, opt);
    std::printf("  PCG (Jacobi):             %4u iterations, residual "
                "%.2e, %.3fs\n",
                r.iterations, r.relative_residual, timer.seconds());
  }
  {
    mpx::LowStretchTreeOptions lst_opt;
    lst_opt.seed = args.seed_or(7);
    mpx::WallTimer timer;
    const mpx::LowStretchTreeResult lst =
        mpx::low_stretch_tree(topo, lst_opt);
    const mpx::TreePreconditioner precond(mpx::with_unit_weights(lst.tree));
    const mpx::PcgResult r = mpx::pcg_solve(lap, b, precond, opt);
    std::printf("  PCG (low-stretch tree):   %4u iterations, residual "
                "%.2e, %.3fs (tree built inside the timing)\n",
                r.iterations, r.relative_residual, timer.seconds());
  }
  std::printf("the tree preconditioner is built from the paper's "
              "decomposition routine — this is the SDD-solver connection "
              "motivating the paper. (A single tree is the *base case*: "
              "the full solver of [9] recursively augments it; see "
              "bench_apps for a near-tree system where the tree "
              "preconditioner already dominates.)\n");
  return 0;
}
