// Spanner construction on a dense random graph: keep the in-piece BFS
// trees plus one bridge per adjacent piece pair, then measure how little
// distances degrade.
//
//   ./spanner_demo [n] [avg_degree] [beta] [--seed N]
#include <cstdio>
#include <cstdlib>

#include "example_cli.hpp"
#include "mpx/mpx.hpp"

int main(int argc, char** argv) {
  const mpx::examples::Args args = mpx::examples::parse_args(argc, argv);
  const mpx::vertex_t n = static_cast<mpx::vertex_t>(args.pos_int(0, 4096));
  const unsigned degree = static_cast<unsigned>(args.pos_int(1, 32));
  const double beta = args.pos_double(2, 0.2);

  const mpx::CsrGraph g =
      mpx::generators::erdos_renyi(n, static_cast<mpx::edge_t>(n) * degree / 2, 7);
  std::printf("input: n=%u, m=%llu (avg degree %.1f)\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()),
              2.0 * static_cast<double>(g.num_edges()) / g.num_vertices());

  mpx::PartitionOptions opt;
  opt.beta = beta;
  opt.seed = args.seed_or(11);
  mpx::WallTimer timer;
  const mpx::SpannerResult r = mpx::ldd_spanner(g, opt);
  std::printf("spanner: %llu edges (%.1f%% of input) = %llu tree + %llu "
              "bridge edges, built in %.3fs\n",
              static_cast<unsigned long long>(r.spanner.num_edges()),
              100.0 * static_cast<double>(r.spanner.num_edges()) /
                  static_cast<double>(g.num_edges()),
              static_cast<unsigned long long>(r.tree_edges),
              static_cast<unsigned long long>(r.bridge_edges),
              timer.seconds());

  const mpx::StretchSample s = mpx::measure_stretch(g, r.spanner, 50, 3);
  std::printf("measured stretch over %zu sampled pairs: mean %.2f, max "
              "%.2f (guarantee: <= %u)\n",
              s.pairs_measured, s.mean_stretch, s.max_stretch,
              r.stretch_bound());
  return 0;
}
