// Linial-Saks block decomposition demo (Section 2 of the paper): partition
// the EDGES into O(log m) blocks so that every connected component of each
// block has O(log n) diameter.
//
//   ./block_decomposition_demo [n] [m] [--seed N]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "example_cli.hpp"
#include "mpx/mpx.hpp"

int main(int argc, char** argv) {
  const mpx::examples::Args args = mpx::examples::parse_args(argc, argv);
  const mpx::vertex_t n = static_cast<mpx::vertex_t>(args.pos_int(0, 8192));
  const mpx::edge_t m = static_cast<mpx::edge_t>(
      args.pos_int(1, static_cast<long long>(n) * 4));

  const mpx::CsrGraph g = mpx::generators::erdos_renyi(n, m, 3);
  std::printf("input: n=%u, m=%llu; log2(m) = %.1f\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()),
              std::log2(static_cast<double>(g.num_edges())));

  mpx::BlockDecompositionOptions opt;
  opt.seed = args.seed_or(9);
  mpx::WallTimer timer;
  const mpx::BlockDecomposition blocks = mpx::block_decomposition(g, opt);
  std::printf("blocks: %u (built in %.3fs)\n", blocks.num_blocks,
              timer.seconds());

  for (std::uint32_t b = 0; b < blocks.num_blocks; ++b) {
    std::size_t count = 0;
    for (const std::uint32_t eb : blocks.block) {
      if (eb == b) ++count;
    }
    const mpx::CsrGraph sub =
        mpx::block_subgraph(blocks, g.num_vertices(), b);
    const mpx::Components comps = mpx::connected_components(sub);
    std::uint32_t max_diam = 0;
    for (mpx::vertex_t v = 0; v < sub.num_vertices(); ++v) {
      if (comps.label[v] == v && sub.degree(v) > 0) {
        max_diam = std::max(max_diam,
                            mpx::two_sweep_diameter_lower_bound(sub, v));
      }
    }
    std::printf("  block %2u: %7zu edges, max component diameter %u\n", b,
                count, max_diam);
  }
  std::printf("every component's diameter is O(log n) and the edge counts "
              "decay geometrically — the [22] guarantee via iterated "
              "(1/2, O(log n)) decompositions.\n");
  return 0;
}
