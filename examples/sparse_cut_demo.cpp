// Sparse-cut heuristic demo: low-diameter decompositions as candidate
// low-conductance cuts (the sparsest-cut connection of the paper's
// introduction, [20, 24]).
//
//   ./sparse_cut_demo [bell_size] [--seed N]
#include <cstdio>
#include <cstdlib>

#include "example_cli.hpp"
#include "mpx/mpx.hpp"

int main(int argc, char** argv) {
  const mpx::examples::Args args = mpx::examples::parse_args(argc, argv);
  const mpx::vertex_t k = static_cast<mpx::vertex_t>(args.pos_int(0, 20));

  // A barbell: two K_k cliques joined by one bridge edge. The unique
  // sparse cut is the bridge.
  const mpx::CsrGraph g = mpx::generators::barbell(k);
  std::printf("barbell(%u): n=%u, m=%llu\n", k, g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));
  const double bridge_phi =
      1.0 / (static_cast<double>(k) * (k - 1) + 1.0);
  std::printf("bridge cut conductance: %.5f\n", bridge_phi);

  mpx::SparseCutOptions opt;
  opt.seed = args.seed_or(42);
  mpx::WallTimer timer;
  const mpx::SparseCutResult r = mpx::best_piece_cut(g, opt);
  std::printf("best decomposition piece: conductance %.5f, side size %u, "
              "found at beta=%.3f (%.3fs)\n",
              r.conductance_value, r.set_size, r.beta, timer.seconds());
  std::printf("=> the decomposition sweep recovers the bottleneck to "
              "within %.1fx\n",
              r.conductance_value / bridge_phi);
  return 0;
}
